"""Failure-injection and integration tests for the remote backend.

The headline scenarios from the lease protocol's failure model:

* a worker that leases specs and dies without reporting (simulated by
  a raw protocol client that disconnects mid-lease) must not lose its
  specs — the lease expires and a healthy worker picks them up, with
  no duplicated publications;
* a broker that disappears and is restarted resumes from the result
  cache, re-serving only the unfinished part of the grid;
* a spec that raises on a worker is retried up to ``max_attempts``
  and then surfaced as ``RemoteExecutionError`` carrying the remote
  traceback.

Plus the end-to-end CLI path: ``ltp-repro worker --connect`` run as a
real subprocess against an in-test broker.
"""

import hashlib
import multiprocessing
import pickle
import socket
import threading
import time

import pytest

from repro.experiments.cli import build_parser, main, _runner_from_args
from repro.runner import (
    Broker,
    PolicySpec,
    RemoteBackend,
    RemoteExecutionError,
    ResultCache,
    Runner,
    census_job,
    run_worker,
    timing_job,
)
from repro.runner.remote import _request, encode_frame, read_frame

SIZE = "tiny"


def _grid():
    return [
        timing_job("em3d", SIZE, PolicySpec(name=p))
        for p in ("base", "dsi", "ltp")
    ] + [
        census_job("em3d", SIZE),
        census_job("tomcatv", SIZE),
    ]


def _digest(value) -> str:
    return hashlib.sha256(pickle.dumps(value)).hexdigest()


@pytest.fixture(scope="module")
def serial_golden():
    results = Runner().run(_grid())
    return {
        spec.canonical(): _digest(value)
        for spec, value in results.items()
    }


class _DoomedWorker:
    """A raw protocol client that leases specs and then 'crashes':
    the connection drops with leases outstanding and no results."""

    def __init__(self, address):
        self.sock = socket.create_connection(address)
        self.stream = self.sock.makefile("rwb")

    def hello_and_lease(self, n: int):
        _request(self.stream, {"type": "hello", "worker": "doomed"})
        reply = _request(
            self.stream, {"type": "lease", "worker": "doomed", "max": n}
        )
        return [key for key, _ in reply["leases"]]

    def crash(self):
        # no bye, no results: exactly what SIGKILL looks like to the
        # broker — silence until the lease ttl runs out
        self.sock.close()


class TestWorkerDeath:
    def test_dead_workers_leases_are_reclaimed_and_rerun(
        self, tmp_path, serial_golden
    ):
        grid = _grid()
        cache = ResultCache(tmp_path)
        broker = Broker(
            grid, cache=cache, lease_ttl=1.0, poll=0.05
        )
        address = broker.start()

        doomed = _DoomedWorker(address)
        taken = doomed.hello_and_lease(2)
        assert len(taken) == 2
        doomed.crash()

        # a healthy worker drains the rest, then inherits the dead
        # worker's specs once their leases expire
        healthy = threading.Thread(
            target=run_worker,
            kwargs=dict(address=address, batch=1, name="healthy"),
            daemon=True,
        )
        healthy.start()
        try:
            streamed = list(broker.stream(timeout=120))
        finally:
            healthy.join(timeout=30)
            broker.stop()

        # nothing lost: the whole grid resolved, byte-identical
        assert len(streamed) == len(grid)
        assert {
            spec.canonical(): _digest(value)
            for spec, value in streamed
        } == serial_golden
        # nothing duplicated: each spec published exactly once, and
        # the dead worker's leases really were reassigned
        assert broker.stats.results == len(grid)
        assert broker.stats.duplicates == 0
        assert broker.table.reclaimed == len(taken)
        assert broker.stats.leases == len(grid) + len(taken)
        # the claim mirror is clean
        assert list((tmp_path / "claims").glob("*.claim")) == []

    def test_slow_worker_duplicate_result_is_dropped(self, tmp_path):
        """A worker that lost its lease to reassignment but still
        reports gets acknowledged, not double-published."""
        spec = census_job("em3d", SIZE)
        cache = ResultCache(tmp_path)
        broker = Broker([spec], cache=cache, lease_ttl=30.0)
        address = broker.start()
        try:
            slow = _DoomedWorker(address)
            [key] = slow.hello_and_lease(1)
            value = Runner().run_one(spec)
            data = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
            first = _request(slow.stream, {
                "type": "result", "worker": "doomed",
                "key": key, "report": data,
            })
            dup = _request(slow.stream, {
                "type": "result", "worker": "doomed",
                "key": key, "report": data,
            })
            slow.crash()
            assert first == {"type": "ok", "duplicate": False}
            assert dup == {"type": "ok", "duplicate": True}
            assert broker.stats.results == 1
            assert broker.stats.duplicates == 1
        finally:
            broker.stop()


class TestBrokerRestart:
    def test_restarted_broker_resumes_from_result_cache(
        self, tmp_path, serial_golden
    ):
        grid = _grid()
        half = grid[:2]

        # first broker resolves part of the grid, then "dies"
        first = Runner(
            cache=ResultCache(tmp_path),
            backend=RemoteBackend(
                workers=1, lease_ttl=20.0, poll=0.02, timeout=240
            ),
        )
        first.run(half)
        assert first.stats.executed == len(half)

        # the restarted broker serves only the remainder remotely
        second = Runner(
            cache=ResultCache(tmp_path),
            backend=RemoteBackend(
                workers=2, lease_ttl=20.0, poll=0.02, timeout=240
            ),
        )
        results = second.run(grid)
        assert second.stats.cache_hits == len(half)
        assert second.stats.executed == len(grid) - len(half)
        assert {
            spec.canonical(): _digest(value)
            for spec, value in results.items()
        } == serial_golden


class TestRemoteFailures:
    def test_failing_spec_surfaces_remote_traceback(self, tmp_path):
        bad = census_job("em3d", SIZE, overrides={"num_nodes": 1})
        backend = RemoteBackend(
            workers=1, lease_ttl=20.0, poll=0.02,
            max_attempts=2, timeout=120,
        )
        runner = Runner(cache=ResultCache(tmp_path), backend=backend)
        with pytest.raises(RemoteExecutionError):
            runner.run([bad])
        assert backend.broker.stats.errors == 2
        # no claim-mirror leak after permanent failure
        assert list((tmp_path / "claims").glob("*.claim")) == []

    def test_oversized_report_fails_spec_instead_of_hanging(
        self, tmp_path, monkeypatch
    ):
        """A report too big for the wire must surface as a failed
        attempt (and eventually RemoteExecutionError), not tear down
        the connection and cycle lease->expire->reassign forever."""
        from repro.runner import remote as remote_mod

        spec = census_job("em3d", SIZE)
        broker = Broker(
            [spec], cache=ResultCache(tmp_path),
            lease_ttl=20.0, poll=0.02, max_attempts=2,
        )
        address = broker.start()
        # shrink the wire budget so any real report exceeds it
        monkeypatch.setattr(remote_mod, "_REPORT_BUDGET", 16)
        try:
            stats = run_worker(address=address, name="w")
            assert stats.executed == 0
            assert stats.failed == 2  # retried, then gave up
            with pytest.raises(RemoteExecutionError, match="exceeds"):
                list(broker.stream(timeout=30))
        finally:
            broker.stop()
        # no mirror-claim leak after the permanent failure either
        assert list((tmp_path / "claims").glob("*.claim")) == []

    def test_expired_leases_leave_no_orphan_mirror_claims(
        self, tmp_path
    ):
        """Mirror claims must be cleaned up on every lease exit path:
        expiry-reclaim without a regrant, and broker stop() while keys
        sit pending."""
        cache = ResultCache(tmp_path)
        specs = [census_job("em3d", SIZE), census_job("tomcatv", SIZE)]
        broker = Broker(specs, cache=cache, lease_ttl=0.5, poll=0.05)
        address = broker.start()
        claims = tmp_path / "claims"
        try:
            first = _DoomedWorker(address)
            assert len(first.hello_and_lease(2)) == 2
            first.crash()
            assert len(list(claims.glob("*.claim"))) == 2
            time.sleep(0.7)  # both leases expire
            # the next lease call reclaims both but regrants only one:
            # the other's mirror claim must be released, not orphaned
            second = _DoomedWorker(address)
            regranted = second.hello_and_lease(1)
            assert len(regranted) == 1
            second.crash()
            # exactly the regranted key's mirror claim survives; the
            # reclaimed-but-not-regranted key's claim must have been
            # released (the old expire()-then-lease() double expiry
            # could hide a reclaim from the broker and leak it)
            assert [p.stem for p in claims.glob("*.claim")] == regranted
        finally:
            broker.stop()
        # stop() drops the remaining claim even though its key went
        # back to pending (nobody regranted it before shutdown)
        assert list(claims.glob("*.claim")) == []

    def test_all_workers_dead_raises_instead_of_hanging(self, tmp_path):
        class _Corpse:
            def is_alive(self):
                return False

        # short lease ttl so the fleet counts as silent quickly
        # (the silence window is ttl / 2)
        broker = Broker(
            _grid(), cache=ResultCache(tmp_path), lease_ttl=2.0
        )
        broker.start()
        try:
            with pytest.raises(RemoteExecutionError, match="silent"):
                list(broker.stream(timeout=60, workers=[_Corpse()]))
        finally:
            broker.stop()

    def test_stale_error_does_not_revoke_reassigned_lease(self):
        """An error reported by a worker whose lease already expired
        and moved to a peer must neither revoke the live lease nor
        burn an attempt (mirrors heartbeat/release owner checks)."""
        from repro.runner.remote import LEASED, LeaseTable

        now = [1000.0]
        table = LeaseTable(
            ["k"], ttl=10.0, clock=lambda: now[0], max_attempts=2
        )
        assert table.lease("A", 1) == ["k"]
        now[0] += 11.0
        assert table.lease("B", 1) == ["k"]  # reassigned after expiry
        assert table.fail("k", "A", "stale boom") is False
        assert table.states()["k"] == LEASED
        assert table.owner_of("k") == "B"
        # B's own failures still count, and only they reach the cap
        assert table.fail("k", "B", "boom 1") is False
        assert table.lease("B", 1) == ["k"]
        assert table.fail("k", "B", "boom 2") is True


def _worker_cli(address, out_path):
    code = main([
        "worker",
        "--connect", f"{address[0]}:{address[1]}",
        "--batch", "2",
        "--name", "cli-worker",
    ])
    with open(out_path, "w") as handle:
        handle.write(str(code))


class TestWorkerCli:
    def test_cli_worker_subprocess_resolves_grid(
        self, tmp_path, serial_golden
    ):
        grid = _grid()
        broker = Broker(
            grid, cache=ResultCache(tmp_path / "cache"), poll=0.05
        )
        address = broker.start()
        out = tmp_path / "exit-code"
        proc = multiprocessing.get_context("fork").Process(
            target=_worker_cli, args=(address, str(out))
        )
        proc.start()
        try:
            streamed = dict(
                (spec.canonical(), _digest(value))
                for spec, value in broker.stream(timeout=120)
            )
        finally:
            proc.join(timeout=60)
            broker.stop()
        assert proc.exitcode == 0
        assert out.read_text() == "0"
        assert streamed == serial_golden
        assert broker.stats.workers == {"cli-worker"}

    def test_failed_connect_restores_trace_cache_global(
        self, tmp_path
    ):
        """run_worker must undo its process-global trace-cache swap
        even when the broker is unreachable (in-process callers would
        otherwise silently keep the worker's cache installed)."""
        from repro.runner import runner as runner_module

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        before = runner_module._TRACE_CACHE
        with pytest.raises(OSError):
            run_worker(
                address=("127.0.0.1", port),
                trace_root=str(tmp_path / "traces"),
            )
        assert runner_module._TRACE_CACHE is before

    def test_worker_against_no_broker_fails_cleanly(self, capsys):
        # grab a port that is certainly closed
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main(["worker", "--connect", f"127.0.0.1:{port}"])
        assert code == 1
        assert "lost broker" in capsys.readouterr().err


class TestCliPlumbing:
    def test_remote_flags_build_a_remote_backend(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--backend", "remote",
            "--listen", "127.0.0.1:7465",
            "--remote-workers", "3", "--lease-ttl", "5",
            "--cache-dir", str(tmp_path),
        ])
        runner = _runner_from_args(args)
        backend = runner.backend
        assert backend.name == "remote"
        assert backend.listen == ("127.0.0.1", 7465)
        assert backend.workers == 3
        assert backend.lease_ttl == 5.0

    def test_remote_workers_default_to_jobs(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--backend", "remote", "--jobs", "4",
            "--cache-dir", str(tmp_path),
        ])
        assert _runner_from_args(args).backend.workers == 4

    def test_explicit_backend_choices_map(self, tmp_path):
        for choice, expected in (
            ("inline", "inline"),
            ("pool", "pool"),
            ("cooperative", "cooperative"),
        ):
            args = build_parser().parse_args([
                "run-all", "--backend", choice,
                "--cache-dir", str(tmp_path),
            ])
            assert _runner_from_args(args).backend.name == expected

    def test_listen_parse_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run-all", "--listen", "no-port-here"]
            )

    def test_cooperative_conflicts_with_other_backend(self, capsys):
        code = main([
            "run-all", "--cooperative", "--backend", "remote",
            "--cache-dir", "/tmp/x",
        ])
        assert code == 2
        assert "conflicts" in capsys.readouterr().err


class TestFrameOverTcp:
    def test_oversized_frame_is_rejected_not_buffered(self):
        """A lying length header must raise, not allocate the cap."""
        import io as _io

        from repro.runner import remote as remote_mod

        frame = bytearray(encode_frame({"type": "hello"}))
        # rewrite the length field to something absurd
        import struct

        frame[5:9] = struct.pack("!I", remote_mod.MAX_FRAME + 1)
        with pytest.raises(remote_mod.ProtocolError):
            read_frame(_io.BytesIO(bytes(frame)))
