"""Index consistency under concurrent publishers.

The acceptance bar for the result index as *infrastructure*: two real
cooperative processes and a remote broker fleet all publish into one
cache directory (so one ``index.sqlite``), and at the end the index
holds exactly one row per unique digest, with no ``database is
locked`` error ever surfacing to a publisher — WAL mode, busy
timeouts, and idempotent digest-keyed upserts absorb the contention.
"""

import json
import multiprocessing
import threading

from repro.runner import (
    PolicySpec,
    ResultCache,
    Runner,
    accuracy_job,
    census_job,
    oracle_job,
    timing_job,
)
from repro.runner.remote import Broker, run_worker
from repro.store.index import ResultIndex

SIZE = "tiny"


def _grid(workload="em3d"):
    return [
        timing_job(workload, SIZE, PolicySpec(name=p))
        for p in ("base", "dsi", "ltp")
    ] + [
        accuracy_job(workload, SIZE, PolicySpec(name="ltp", bits=13)),
        oracle_job(workload, SIZE),
        census_job(workload, SIZE),
    ]


def _cooperative_member(cache_dir: str, out_path: str) -> None:
    try:
        runner = Runner(
            cooperative=True,
            cache=ResultCache(cache_dir),
            poll_interval=0.02,
            claim_ttl=20.0,
        )
        runner.run(_grid())
        payload = {"error": None}
    except Exception as exc:  # propagated to the parent's assert
        payload = {"error": f"{type(exc).__name__}: {exc}"}
    with open(out_path, "w") as handle:
        json.dump(payload, handle)


class TestConcurrentPublishers:
    def test_cooperative_pair_plus_broker_one_index(self, tmp_path):
        cache_dir = tmp_path / "shared-cache"
        ctx = multiprocessing.get_context("fork")

        # two cooperative processes split one grid through claims...
        outs = [tmp_path / f"coop-{i}.json" for i in range(2)]
        coop = [
            ctx.Process(
                target=_cooperative_member,
                args=(str(cache_dir), str(out)),
            )
            for out in outs
        ]
        # ...while a broker + worker fleet publishes a second
        # workload's grid into the same cache concurrently
        broker_cache = ResultCache(cache_dir)
        broker = Broker(
            _grid("tomcatv"), cache=broker_cache, lease_ttl=30.0
        )
        address = broker.start()
        worker_proc = ctx.Process(
            target=run_worker,
            kwargs={"address": address, "name": "w0"},
        )
        for proc in (*coop, worker_proc):
            proc.start()
        drained = threading.Thread(
            target=lambda: list(broker.stream())
        )
        drained.start()
        drained.join(timeout=120)
        for proc in (*coop, worker_proc):
            proc.join(timeout=120)
            assert proc.exitcode == 0
        broker.stop()
        assert not drained.is_alive()

        # no publisher saw an error (a surfaced "database is locked"
        # would land here as OperationalError text)
        for out in outs:
            with open(out) as handle:
                payload = json.load(handle)
            assert payload["error"] is None

        # one row per unique digest, exactly the blobs on disk
        index = ResultIndex(cache_dir)
        blobs = {
            path.stem for path in broker_cache.entry_paths()
        }
        expected = {
            broker_cache.key(spec)
            for spec in _grid() + _grid("tomcatv")
        }
        assert blobs == expected
        assert index.digests() == expected
        assert index.count() == len(expected)

        # broker-published rows carry the worker's name as holder;
        # cooperative rows carry host-pid holders
        rows = index.select("", ())
        holders = {
            row["digest"]: row["holder"] for row in rows
        }
        tomcatv_digests = {
            broker_cache.key(spec) for spec in _grid("tomcatv")
        }
        for digest in tomcatv_digests:
            assert holders[digest] == "w0"
        for digest in expected - tomcatv_digests:
            assert holders[digest] is not None
            assert "-" in holders[digest]

    def test_threaded_hammer_single_digest_set(self, tmp_path):
        """Many threads upserting overlapping digests concurrently
        converge to one row each, with metrics intact."""
        index = ResultIndex(tmp_path)
        errors = []

        def hammer(worker_id: int) -> None:
            try:
                for round_no in range(20):
                    for digest_no in range(5):
                        index.record(
                            f"digest-{digest_no}",
                            None,
                            holder=f"t{worker_id}",
                            now=float(round_no),
                        )
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert index.count() == 5
