"""Integration tests for broker-built trace distribution.

The contract under test: with ``ship_traces`` on, (1) a wire-shipped
trace is event-for-event identical to a locally built one, (2) a
2-worker remote fleet performs exactly one trace build fleet-wide per
unique workload fingerprint — on the broker — with reports
byte-identical to a serial run (the PR's acceptance criterion), and
(3) corrupted / truncated / digest-mismatched / misaddressed blobs
are rejected worker-side and fall back to a local build without
failing the spec.
"""

import dataclasses
import hashlib
import os
import pickle
import socket

import pytest

from repro.codecs import pack
from repro.runner import (
    Broker,
    PolicySpec,
    RemoteBackend,
    ResultCache,
    Runner,
    census_job,
    run_worker,
    timing_job,
)
from repro.runner import runner as runner_module
from repro.runner.remote import _request, _verify_trace_blob
from repro.workloads import (
    TraceCache,
    Workload,
    get_workload,
    trace_key,
)

SIZE = "tiny"


def _grid():
    # four specs over two unique workload fingerprints
    return [
        census_job("em3d", SIZE),
        census_job("tomcatv", SIZE),
        timing_job("em3d", SIZE, PolicySpec(name="base")),
        timing_job("em3d", SIZE, PolicySpec(name="ltp")),
    ]


def _digests(results):
    return {
        spec.canonical(): hashlib.sha256(pickle.dumps(value)).hexdigest()
        for spec, value in results.items()
    }


def assert_event_identical(a, b):
    """Event-for-event structural equality of two ProgramSets."""
    assert a.name == b.name
    assert a.num_nodes == b.num_nodes
    assert sorted(a.programs) == sorted(b.programs)
    for node in a.programs:
        steps_a = a.programs[node].steps
        steps_b = b.programs[node].steps
        assert len(steps_a) == len(steps_b), f"node {node} length"
        for i, (sa, sb) in enumerate(zip(steps_a, steps_b)):
            assert type(sa) is type(sb), f"node {node} step {i}"
            for field in dataclasses.fields(sa):
                assert getattr(sa, field.name) == getattr(
                    sb, field.name
                ), f"node {node} step {i} field {field.name}"


@pytest.fixture
def fresh_memo():
    """Start from an empty per-process ProgramSet memo so forked
    workers cannot inherit pre-built traces from earlier tests."""
    runner_module._PROGRAMS.clear()
    yield
    runner_module._PROGRAMS.clear()


@pytest.fixture(scope="module")
def serial_golden():
    return _digests(Runner().run(_grid()))


class TestShippedTraceGolden:
    def test_wire_blob_equals_local_build(self, tmp_path):
        """Fetch a trace over the raw protocol and compare it
        event-for-event against a fresh local build."""
        spec = census_job("em3d", SIZE)
        broker = Broker([spec], ship_traces=True, codec="zlib")
        address = broker.start()
        sock = socket.create_connection(address)
        stream = sock.makefile("rwb")
        try:
            welcome = _request(stream, {"type": "hello", "worker": "w"})
            assert welcome["ship_traces"] is True
            assert welcome["codec"] == "zlib"

            reply = _request(
                stream, {"type": "lease", "worker": "w", "max": 1}
            )
            workload = get_workload("em3d", SIZE)
            assert reply["trace_offers"] == [trace_key(workload)]

            fetched = _request(stream, {
                "type": "trace-fetch", "worker": "w",
                "key": trace_key(workload),
            })
            programs = _verify_trace_blob(trace_key(workload), fetched)
            assert programs is not None
            local = workload.build()
            assert_event_identical(programs, local)
            # the shipped blob really is the compressed form
            raw = pickle.dumps(local, protocol=pickle.HIGHEST_PROTOCOL)
            assert len(fetched["blob"]) < len(raw)
            assert broker.stats.trace_builds == 1
            assert broker.stats.trace_fetches == 1
        finally:
            sock.close()
            broker.stop()

    def test_unknown_key_answers_no_blob(self, tmp_path):
        broker = Broker(
            [census_job("em3d", SIZE)], ship_traces=True, codec="zlib"
        )
        address = broker.start()
        sock = socket.create_connection(address)
        stream = sock.makefile("rwb")
        try:
            reply = _request(stream, {
                "type": "trace-fetch", "worker": "w", "key": "f" * 64,
            })
            assert reply["type"] == "trace"
            assert reply["blob"] is None
            assert _verify_trace_blob("f" * 64, reply) is None
        finally:
            sock.close()
            broker.stop()

    def test_shipping_off_offers_nothing(self, tmp_path):
        broker = Broker([census_job("em3d", SIZE)])
        address = broker.start()
        sock = socket.create_connection(address)
        stream = sock.makefile("rwb")
        try:
            welcome = _request(stream, {"type": "hello", "worker": "w"})
            assert welcome["ship_traces"] is False
            reply = _request(
                stream, {"type": "lease", "worker": "w", "max": 1}
            )
            assert "trace_offers" not in reply
        finally:
            sock.close()
            broker.stop()


class TestBlobVerification:
    """Worker-side rejection: every tampered reply must come back as
    None (-> local-build fallback), never raise."""

    def _good_reply(self):
        workload = get_workload("em3d", SIZE)
        raw = pickle.dumps(
            workload.build(), protocol=pickle.HIGHEST_PROTOCOL
        )
        key = trace_key(workload)
        return key, {
            "type": "trace",
            "key": key,
            "blob": pack(raw, "zlib"),
            "digest": hashlib.sha256(raw).hexdigest(),
            "codec": "zlib",
        }

    def test_good_blob_verifies(self):
        key, reply = self._good_reply()
        assert _verify_trace_blob(key, reply) is not None

    def test_truncated_blob_rejected(self):
        key, reply = self._good_reply()
        reply["blob"] = reply["blob"][: len(reply["blob"]) // 2]
        assert _verify_trace_blob(key, reply) is None

    def test_corrupted_blob_rejected(self):
        key, reply = self._good_reply()
        reply["blob"] = reply["blob"][:-16] + b"\x00" * 16
        assert _verify_trace_blob(key, reply) is None

    def test_digest_mismatch_rejected(self):
        key, reply = self._good_reply()
        reply["digest"] = "0" * 64
        assert _verify_trace_blob(key, reply) is None

    def test_misaddressed_key_rejected(self):
        key, reply = self._good_reply()
        reply["key"] = "a" * 64
        assert _verify_trace_blob(key, reply) is None

    def test_non_programset_payload_rejected(self):
        key, reply = self._good_reply()
        raw = pickle.dumps({"not": "a ProgramSet"})
        reply["blob"] = pack(raw, "zlib")
        reply["digest"] = hashlib.sha256(raw).hexdigest()
        assert _verify_trace_blob(key, reply) is None

    def test_unknown_codec_blob_rejected(self):
        key, reply = self._good_reply()
        reply["blob"] = b"LTPZ" + bytes([3]) + b"lz9" + b"payload"
        assert _verify_trace_blob(key, reply) is None

    def test_missing_blob_rejected(self):
        key, reply = self._good_reply()
        reply["blob"] = None
        assert _verify_trace_blob(key, reply) is None


class TestFleetExactlyOnceBuild:
    def test_two_worker_fleet_builds_each_trace_once(
        self, tmp_path, serial_golden, fresh_memo, monkeypatch
    ):
        """The acceptance criterion: a 2-worker remote run with trace
        shipping performs exactly one trace build fleet-wide per
        unique workload fingerprint — on the broker — and reports
        stay byte-identical to serial."""
        grid = _grid()
        unique_traces = {
            trace_key(get_workload(s.workload, s.size))
            for s in grid
        }
        build_log = tmp_path / "builds.log"
        original = Workload.build

        def counted(self):
            with open(build_log, "a") as handle:
                handle.write(f"{os.getpid()}\n")
            return original(self)

        # forked workers inherit the instrumented class
        monkeypatch.setattr(Workload, "build", counted)

        backend = RemoteBackend(
            workers=2, lease_ttl=20.0, poll=0.02, timeout=240,
            ship_traces=True, codec="zlib",
        )
        runner = Runner(
            cache=ResultCache(tmp_path / "cache", codec="zlib"),
            backend=backend,
        )
        results = runner.run(grid)
        assert _digests(results) == serial_golden

        pids = build_log.read_text().split()
        assert len(pids) == len(unique_traces), (
            f"expected exactly {len(unique_traces)} fleet-wide builds,"
            f" saw {len(pids)}"
        )
        assert set(pids) == {str(os.getpid())}, (
            "every build must happen broker-side"
        )
        stats = backend.broker.stats
        assert stats.trace_builds == len(unique_traces)
        assert stats.trace_fetches >= len(unique_traces)
        assert stats.results == len(grid)
        assert len(stats.workers) == 2

    def test_single_worker_accounting_in_process(
        self, tmp_path, serial_golden, fresh_memo
    ):
        """run_worker against an in-process broker: fetch accounting
        lands in WorkerStats and the local trace cache persists the
        shipped blobs."""
        grid = _grid()
        broker = Broker(
            grid, cache=ResultCache(tmp_path / "cache"),
            lease_ttl=20.0, poll=0.02,
            ship_traces=True, codec="zlib",
        )
        address = broker.start()
        try:
            stats = run_worker(
                address=address, batch=2, name="w",
                trace_root=str(tmp_path / "worker-traces"),
            )
        finally:
            broker.stop()
        assert stats.executed == len(grid)
        assert stats.traces_fetched == 2  # one per unique fingerprint
        assert stats.trace_fallbacks == 0
        assert stats.trace_bytes > 0
        # shipped blobs were persisted into the worker's trace cache
        local = TraceCache(tmp_path / "worker-traces")
        for name in ("em3d", "tomcatv"):
            hit, programs = local.get(get_workload(name, SIZE))
            assert hit
            assert_event_identical(
                programs, get_workload(name, SIZE).build()
            )
        assert _digests(broker.results_by_spec()) == serial_golden

    def test_no_fetch_traces_builds_locally(
        self, tmp_path, fresh_memo
    ):
        """fetch_traces=False ignores the broker's offers entirely."""
        spec = census_job("em3d", SIZE)
        broker = Broker(
            [spec], lease_ttl=20.0, poll=0.02,
            ship_traces=True, codec="zlib",
        )
        address = broker.start()
        try:
            stats = run_worker(
                address=address, name="w", fetch_traces=False
            )
        finally:
            broker.stop()
        assert stats.executed == 1
        assert stats.traces_fetched == 0
        assert broker.stats.trace_fetches == 0


class TestCorruptBlobFallback:
    def test_fleet_survives_corrupt_blobs(
        self, tmp_path, serial_golden, fresh_memo, monkeypatch
    ):
        """A broker that ships garbage blobs must not fail any spec:
        workers fall back to local builds and the grid still resolves
        byte-identically."""
        def corrupt(self, key):
            return {
                "type": "trace",
                "key": key,
                "blob": b"LTPZ" + bytes([4]) + b"zlib" + b"garbage",
                "digest": "0" * 64,
                "codec": "zlib",
            }

        monkeypatch.setattr(Broker, "_handle_trace_fetch", corrupt)
        backend = RemoteBackend(
            workers=2, lease_ttl=20.0, poll=0.02, timeout=240,
            ship_traces=True, codec="zlib",
        )
        runner = Runner(
            cache=ResultCache(tmp_path, codec="zlib"), backend=backend,
        )
        results = runner.run(_grid())
        assert _digests(results) == serial_golden
        stats = backend.broker.stats
        assert stats.results == len(_grid())
        assert stats.errors == 0


class TestBrokerServingPolicy:
    def test_oversized_blob_refused_not_shipped(
        self, tmp_path, fresh_memo, monkeypatch
    ):
        """A trace too big for the wire answers blob None (the worker
        builds locally) instead of an oversized frame that would tear
        down the worker connection."""
        from repro.runner import remote as remote_mod

        monkeypatch.setattr(remote_mod, "_TRACE_BUDGET", 16)
        spec = census_job("em3d", SIZE)
        broker = Broker(
            [spec], lease_ttl=20.0, poll=0.02,
            ship_traces=True, codec="zlib",
        )
        address = broker.start()
        try:
            stats = run_worker(address=address, name="w")
        finally:
            broker.stop()
        assert stats.executed == 1  # fallback build, spec still done
        assert stats.traces_fetched == 0
        assert stats.trace_fallbacks == 1
        assert broker.stats.trace_bytes == 0

    def test_warm_broker_cache_serves_file_bytes_without_build(
        self, tmp_path, fresh_memo
    ):
        """When the broker's trace cache already holds the blob in
        the wire codec, fetches ship the stored file bytes as-is —
        zero builds, zero re-packing."""
        workload = get_workload("em3d", SIZE)
        warm = TraceCache(tmp_path / "traces", codec="zlib")
        warm.put(workload, workload.build())
        stored = warm.load_blob(workload)

        spec = census_job("em3d", SIZE)
        broker = Broker(
            [spec], lease_ttl=20.0, poll=0.02,
            ship_traces=True, codec="zlib",
            trace_cache=TraceCache(tmp_path / "traces", codec="zlib"),
        )
        address = broker.start()
        sock = socket.create_connection(address)
        stream = sock.makefile("rwb")
        try:
            reply = _request(stream, {
                "type": "trace-fetch", "worker": "w",
                "key": trace_key(workload),
            })
            assert reply["blob"] == stored  # the file bytes verbatim
            assert _verify_trace_blob(
                trace_key(workload), reply
            ) is not None
            assert broker.stats.trace_builds == 0
            # nothing memoized in RAM: the file serves later fetches
            assert broker._trace_blobs == {}
        finally:
            sock.close()
            broker.stop()

    def test_counter_starts_at_hello_not_first_result(self, tmp_path):
        """The throughput denominator must span the worker's session:
        the broker opens the counter on hello, so a slow first spec
        does not report an inflated jobs/min."""
        from repro.runner import ResultCache as RC

        spec = census_job("em3d", SIZE)
        broker = Broker(
            [spec], cache=RC(tmp_path), lease_ttl=20.0, poll=0.02,
        )
        address = broker.start()
        sock = socket.create_connection(address)
        stream = sock.makefile("rwb")
        try:
            _request(stream, {"type": "hello", "worker": "w"})
            assert "w" in broker._counters
            counter = broker._counters["w"]
            assert counter.done == 0
            assert not counter.path().exists()  # nothing completed yet
        finally:
            sock.close()
            broker.stop()

    def test_torn_cache_file_header_degrades_to_rebuild(
        self, tmp_path, fresh_memo
    ):
        """A broker trace-cache entry truncated inside its LTPZ
        header must not poison trace-fetch for that key forever — the
        fetch falls through to cached_build, which repairs the entry,
        and the blob ships."""
        workload = get_workload("em3d", SIZE)
        cache = TraceCache(tmp_path / "traces", codec="zlib")
        path = cache.path(workload)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"LTPZ\x04zl")  # torn mid-header

        spec = census_job("em3d", SIZE)
        broker = Broker(
            [spec], lease_ttl=20.0, poll=0.02,
            ship_traces=True, codec="zlib",
            trace_cache=cache,
        )
        address = broker.start()
        sock = socket.create_connection(address)
        stream = sock.makefile("rwb")
        try:
            reply = _request(stream, {
                "type": "trace-fetch", "worker": "w",
                "key": trace_key(workload),
            })
            assert reply["type"] == "trace"
            assert _verify_trace_blob(
                trace_key(workload), reply
            ) is not None
            assert broker.stats.trace_builds == 1  # repaired via build
        finally:
            sock.close()
            broker.stop()
        # and the on-disk entry is healthy again
        hit, _ = TraceCache(tmp_path / "traces").get(workload)
        assert hit
