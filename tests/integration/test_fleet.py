"""Integration tests for serve mode, grid submission, and autoscaling.

The headline scenario from the acceptance criteria: one persistent
broker accepts two submitted grids back-to-back without restart, the
controller scales the worker fleet up from zero on queue depth and
back down to zero on drain (asserted via the scaling-event log), and
every streamed result is byte-identical to the inline backend.

Plus the protocol-level seams: the proactive welcome trace offer, the
v1 wire-compat accept, submitted-grid failure delivery, the
``RemoteBackend(attach=...)`` path, and the serve/submit CLI plumbing.
"""

import hashlib
import io
import pickle
import socket
import struct
import time

import pytest

from repro.experiments.cli import build_parser, main, _runner_from_args
from repro.fleet import FleetService, QueueDepthPolicy
from repro.runner import (
    Broker,
    GridClient,
    PolicySpec,
    RemoteExecutionError,
    ResultCache,
    Runner,
    census_job,
    read_frame,
    run_worker,
    submit_grid,
    timing_job,
)
from repro.runner import remote as remote_mod
from repro.runner.remote import _request
from repro.workloads import TraceCache, get_workload, trace_key

SIZE = "tiny"


def _grid_a():
    return [
        timing_job("em3d", SIZE, PolicySpec(name=p))
        for p in ("base", "dsi", "ltp")
    ] + [census_job("em3d", SIZE)]


def _grid_b():
    # overlaps grid A on one spec (census em3d): the second submit
    # must serve it from the live results, not re-execute
    return [
        census_job("em3d", SIZE),
        census_job("tomcatv", SIZE),
        timing_job("tomcatv", SIZE, PolicySpec(name="ltp")),
    ]


def _digest(value) -> str:
    return hashlib.sha256(pickle.dumps(value)).hexdigest()


@pytest.fixture(scope="module")
def golden():
    results = Runner().run(_grid_a() + _grid_b())
    return {
        spec.canonical(): _digest(value)
        for spec, value in results.items()
    }


def _service(tmp_path, **kwargs):
    defaults = dict(
        cache=ResultCache(tmp_path / "serve-cache"),
        policy=QueueDepthPolicy(
            specs_per_worker=2, min_workers=0, max_workers=2,
            cooldown=0.2,
        ),
        scale_interval=0.05,
        lease_ttl=10.0,
        poll=0.02,
    )
    defaults.update(kwargs)
    return FleetService(**defaults)


class TestServeMode:
    def test_two_grids_autoscale_up_then_down(self, tmp_path, golden):
        """The acceptance scenario, end to end in one process."""
        with _service(tmp_path) as service:
            client = GridClient(service.address, name="it-client")
            try:
                first = client.submit(_grid_a())
                got_a = {
                    spec.canonical(): _digest(value)
                    for spec, value in client.stream(timeout=240)
                }
                second = client.submit(_grid_b())
                got_b = {
                    spec.canonical(): _digest(value)
                    for spec, value in client.stream(timeout=240)
                }
            finally:
                client.close()

            # same broker, no restart, two grids accounted
            assert first["grid"] != second["grid"]
            assert service.broker.stats.grids == 2
            assert service.broker.stats.grids_done == 2

            # byte-identical to the inline backend
            assert got_a == {
                spec.canonical(): golden[spec.canonical()]
                for spec in _grid_a()
            }
            assert got_b == {
                spec.canonical(): golden[spec.canonical()]
                for spec in _grid_b()
            }

            # the overlapping spec was served, not re-executed: every
            # unique spec ran exactly once fleet-wide
            unique = len(dict.fromkeys(_grid_a() + _grid_b()))
            assert service.broker.stats.results == unique
            assert second["cached"] >= 1

            # scaled up from zero on queue depth...
            events = list(service.controller.events)
            assert events and events[0].action == "up"
            assert events[0].live == 0
            assert events[0].desired > 0
            assert events[0].queue_depth > 0

            # ...and back down to zero on drain
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if service.supervisor.live() == 0 and any(
                    e.action == "down" and e.desired == 0
                    for e in service.controller.events
                ):
                    break
                time.sleep(0.05)
            downs = [
                e for e in service.controller.events
                if e.action == "down"
            ]
            assert downs and downs[-1].desired == 0
            assert service.supervisor.live() == 0

            # the status mirror landed next to the claim files
            status = (
                service.cache.root / "claims" / "fleet.json"
            )
            assert status.is_file()

    def test_resubmitted_grid_is_fully_cached(self, tmp_path):
        with _service(tmp_path) as service:
            address = service.address
            results = submit_grid(address, _grid_a(), timeout=240)
            assert len(results) == len(_grid_a())
            with GridClient(address) as client:
                reply = client.submit(_grid_a())
                again = dict(client.stream(timeout=60))
            assert reply["cached"] == len(_grid_a())
            assert reply["new"] == 0
            assert {
                s.canonical(): _digest(v) for s, v in again.items()
            } == {
                s.canonical(): _digest(v) for s, v in results.items()
            }

    def test_failed_spec_reported_to_submitting_client(
        self, tmp_path
    ):
        bad = census_job("em3d", SIZE, overrides={"num_nodes": 1})
        with _service(
            tmp_path,
            cache=ResultCache(tmp_path / "fail-cache"),
            max_attempts=2,
        ) as service:
            with GridClient(service.address) as client:
                client.submit([bad, census_job("tomcatv", SIZE)])
                with pytest.raises(
                    RemoteExecutionError, match="failed permanently"
                ):
                    list(client.stream(timeout=240))

    def test_resubmitting_failed_grid_retries_instead_of_hanging(
        self, tmp_path
    ):
        """A permanently FAILED key must not poison later grids: a
        resubmit re-arms its attempt budget (the operator's retry
        path) rather than subscribing to a key nobody will lease."""
        bad = census_job("em3d", SIZE, overrides={"num_nodes": 1})
        with _service(
            tmp_path,
            cache=ResultCache(tmp_path / "cache"),
            max_attempts=1,
        ) as service:
            for attempt in range(2):
                with GridClient(service.address) as client:
                    client.submit([bad])
                    with pytest.raises(
                        RemoteExecutionError, match="failed"
                    ):
                        # bounded: the second submission must reach
                        # grid-done again, not poll forever
                        list(client.stream(timeout=120))
            # both submissions burned real attempts on the fleet
            assert service.broker.stats.errors == 2

    def test_grid_poll_batches_respect_the_wire_budget(
        self, tmp_path, monkeypatch
    ):
        """max_n results that individually fit could jointly exceed
        the frame cap — batches must split instead of tearing down
        the client connection."""
        specs = [
            census_job(name, SIZE) for name in ("em3d", "tomcatv")
        ]
        cache = ResultCache(tmp_path)
        for spec in specs:
            cache.put(spec, Runner().run_one(spec))
        monkeypatch.setattr(remote_mod, "_REPORT_BUDGET", 64)
        broker = Broker((), cache=cache, persistent=True, poll=0.02)
        address = broker.start()
        try:
            raw = _RawClient(address)
            reply = raw.request({
                "type": "submit", "client": "c", "specs": specs,
            })
            assert reply["cached"] == 2
            first = raw.request({
                "type": "grid-poll", "grid": reply["grid"],
                "max": 32,
            })
            # both results are ready, but one frame only carries what
            # fits the budget (every pickled report exceeds 64 bytes,
            # so exactly the always-shipped first item)
            assert first["count"] == 1
            second = raw.request({
                "type": "grid-poll", "grid": reply["grid"],
                "max": 32,
            })
            assert second["count"] == 1
            done = raw.request({
                "type": "grid-poll", "grid": reply["grid"],
                "max": 32,
            })
            assert done["type"] == "grid-done"
            raw.close()
        finally:
            broker.stop()

    def test_per_grid_broker_rejects_foreign_submissions(
        self, tmp_path
    ):
        """A run-all broker serves exactly its owner's grid: a
        foreign `submit` must be refused, not spliced into the
        owner's stream."""
        broker = Broker(
            [census_job("em3d", SIZE)], cache=ResultCache(tmp_path)
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            reply = raw.request({
                "type": "submit", "client": "stranger",
                "specs": [census_job("tomcatv", SIZE)],
            })
            assert reply["type"] == "error"
            assert "serve" in reply["message"]
            assert broker.stats.specs == 1  # untouched
            poll = raw.request({"type": "grid-poll", "grid": "g0"})
            assert poll["type"] == "error"
            raw.close()
        finally:
            broker.stop()

    def test_grid_state_is_dropped_after_done_and_idle_reap(
        self, tmp_path
    ):
        """Serve-mode memory lifetime: delivered grids drop at
        grid-done, vanished clients' grids drop after the idle
        timeout (their results stay durable in the cache)."""
        specs = [census_job("em3d", SIZE)]
        cache = ResultCache(tmp_path)
        for spec in specs:
            cache.put(spec, Runner().run_one(spec))
        broker = Broker(
            (), cache=cache, persistent=True, grid_idle_timeout=0.2
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            done_grid = raw.request({
                "type": "submit", "client": "c", "specs": specs,
            })["grid"]
            raw.request({
                "type": "grid-poll", "grid": done_grid, "max": 32,
            })
            done = raw.request({
                "type": "grid-poll", "grid": done_grid, "max": 32,
            })
            assert done["type"] == "grid-done"
            assert done_grid not in broker._grids  # dropped at done

            # a client that submits and vanishes: its grid reaps out
            lost_grid = raw.request({
                "type": "submit", "client": "ghost",
                "specs": [census_job("tomcatv", SIZE)],
            })["grid"]
            assert lost_grid in broker._grids
            time.sleep(0.3)
            assert broker.reap_grids() == 1
            assert lost_grid not in broker._grids
            assert not broker._subscribers  # subscriptions cleaned
            raw.close()
        finally:
            broker.stop()

    def test_persistent_results_map_is_budget_bounded(self, tmp_path):
        """A long-lived service must not hold every report in RAM
        forever: the in-memory map evicts to its budget, and evicted
        keys are still served from the durable cache."""
        grid = _grid_a()
        with _service(
            tmp_path,
            cache=ResultCache(tmp_path / "cache"),
        ) as service:
            service.broker.results_budget = 1  # evict ~everything
            results = submit_grid(
                service.address, grid, timeout=240
            )
            assert len(results) == len(grid)
            # only the most recent entry may remain in memory
            assert len(service.broker.results) <= 1
            # the stream() queue must stay empty in serve mode —
            # nothing drains it there, so puts would pin reports
            assert service.broker._queue.qsize() == 0
            # accounting matches the held entries exactly
            assert service.broker._result_bytes_held == sum(
                service.broker._result_sizes.values()
            )
            # ...yet a resubmission is still fully served (from disk)
            with GridClient(service.address) as client:
                reply = client.submit(grid)
                again = dict(client.stream(timeout=60))
            assert reply["cached"] == len(grid)
            assert len(again) == len(grid)

    def test_quiet_service_reaps_vanished_clients_grids(
        self, tmp_path
    ):
        """Grid reclamation must not depend on fresh submissions:
        the control loop sweeps idle grids on its own."""
        with _service(tmp_path) as service:
            service.broker.grid_idle_timeout = 0.3
            client = GridClient(service.address, name="vanisher")
            client.submit([census_job("em3d", SIZE)])
            client.close()  # dies without ever polling
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if not service.broker._grids:
                    break
                time.sleep(0.05)
            assert not service.broker._grids
            assert not service.broker._subscribers

    def test_resubmit_after_eviction_and_prune_reexecutes(
        self, tmp_path
    ):
        """A DONE key whose value is gone from both broker memory
        (budget eviction) and the cache (operator prune) must be
        re-enqueued on resubmit — deterministic re-execution, not a
        hung grid."""
        grid = [census_job("em3d", SIZE)]
        with _service(
            tmp_path, cache=ResultCache(tmp_path / "cache")
        ) as service:
            first = submit_grid(service.address, grid, timeout=240)
            assert len(first) == len(grid)
            executed_before = service.broker.stats.results
            # simulate eviction + a live-cache prune
            service.broker.results.clear()
            service.broker._result_sizes.clear()
            service.broker._result_bytes_held = 0
            for path in service.cache.entry_paths():
                path.unlink()
            again = submit_grid(service.address, grid, timeout=240)
            assert len(again) == len(grid)
            assert (
                service.broker.stats.results == executed_before + 1
            )
            assert {
                s.canonical(): _digest(v) for s, v in again.items()
            } == {
                s.canonical(): _digest(v) for s, v in first.items()
            }
            # the re-execution replaced, not double-counted, its
            # budget accounting
            assert service.broker._result_bytes_held == sum(
                service.broker._result_sizes.values()
            )

    def test_unshippable_report_becomes_a_grid_failure(
        self, tmp_path, monkeypatch
    ):
        """A single report too big for any frame is delivered as that
        spec's failure instead of an oversized frame that kills the
        client connection."""
        specs = [census_job("em3d", SIZE)]
        cache = ResultCache(tmp_path)
        for spec in specs:
            cache.put(spec, Runner().run_one(spec))
        monkeypatch.setattr(remote_mod, "_GRID_ITEM_LIMIT", 16)
        broker = Broker((), cache=cache, persistent=True, poll=0.02)
        address = broker.start()
        try:
            with GridClient(address) as client:
                client.submit(specs)
                assert client._sock.gettimeout() == 300.0
                with pytest.raises(
                    RemoteExecutionError, match="frame limit"
                ):
                    list(client.stream(timeout=60))
        finally:
            broker.stop()

    def test_lease_table_requeue_resets_done_only(self):
        from repro.runner.remote import DONE, PENDING, LeaseTable

        table = LeaseTable(["k"], ttl=10.0)
        assert table.requeue("k") is False  # pending: no-op
        [key] = table.lease("w", 1)
        table.complete(key)
        assert table.states()["k"] == DONE
        assert table.requeue("k") is True
        assert table.states()["k"] == PENDING
        assert table.requeue("missing") is False

    def test_requeue_resets_the_attempt_budget(self):
        """A spec that erred transiently before succeeding must not
        inherit that history on a post-requeue re-run — one new
        transient error would otherwise fail it permanently."""
        from repro.runner.remote import LeaseTable

        table = LeaseTable(["k"], ttl=10.0, max_attempts=2)
        [key] = table.lease("w", 1)
        assert table.fail(key, "w", "transient") is False
        [key] = table.lease("w", 1)
        table.complete(key)  # succeeded with 1 attempt burned
        assert table.requeue(key) is True
        [key] = table.lease("w", 1)
        # fresh budget: the first new error is not final
        assert table.fail(key, "w", "transient again") is False

    def test_stream_timeout_applies_even_while_results_trickle(
        self, tmp_path, monkeypatch
    ):
        """The deadline bounds the whole grid: a fleet that keeps one
        result per poll coming must still trip the timeout."""
        specs = [
            census_job(name, SIZE) for name in ("em3d", "tomcatv")
        ]
        cache = ResultCache(tmp_path)
        for spec in specs:
            cache.put(spec, Runner().run_one(spec))
        # one result per poll: every poll is non-empty
        monkeypatch.setattr(remote_mod, "_REPORT_BUDGET", 64)
        broker = Broker((), cache=cache, persistent=True, poll=0.02)
        address = broker.start()
        try:
            with GridClient(address) as client:
                client.submit(specs)
                with pytest.raises(
                    RemoteExecutionError, match="unresolved after"
                ):
                    collected = []
                    for item in client.stream(timeout=1e-9):
                        collected.append(item)
        finally:
            broker.stop()

    def test_grid_results_travel_under_the_broker_codec(
        self, tmp_path
    ):
        """Non-empty grid-results batches are packed through the wire
        codec like every other payload path."""
        from repro.codecs import blob_codec

        specs = [census_job("em3d", SIZE)]
        cache = ResultCache(tmp_path, codec="zlib")
        for spec in specs:
            cache.put(spec, Runner().run_one(spec))
        broker = Broker(
            (), cache=cache, persistent=True, codec="zlib", poll=0.02
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            gid = raw.request({
                "type": "submit", "client": "c", "specs": specs,
            })["grid"]
            reply = raw.request({
                "type": "grid-poll", "grid": gid, "max": 32,
            })
            assert isinstance(reply["results"], bytes)
            assert blob_codec(reply["results"]) == "zlib"
            raw.close()
            # and the GridClient decodes it transparently
            with GridClient(address) as client:
                client.submit(specs)
                decoded = dict(client.stream(timeout=60))
            assert len(decoded) == 1
        finally:
            broker.stop()

    def test_attach_backend_rides_the_service(self, tmp_path, golden):
        with _service(tmp_path) as service:
            runner = Runner(
                cache=ResultCache(tmp_path / "client-cache"),
                backend=remote_mod.RemoteBackend(
                    attach=service.address, timeout=240
                ),
            )
            results = runner.run(_grid_a())
            assert runner.stats.executed == len(_grid_a())
        assert {
            spec.canonical(): _digest(value)
            for spec, value in results.items()
        } == {
            spec.canonical(): golden[spec.canonical()]
            for spec in _grid_a()
        }
        # attach publishes into the *client's* cache (the backend
        # flips publishes off, so the Runner did its own puts)
        assert ResultCache(tmp_path / "client-cache").entries() == len(
            _grid_a()
        )


class _RawClient:
    """A bare protocol peer for frame-level assertions."""

    def __init__(self, address):
        self.sock = socket.create_connection(address)
        self.stream = self.sock.makefile("rwb")

    def request(self, message):
        return _request(self.stream, message)

    def close(self):
        self.sock.close()


class TestFairShare:
    def test_two_tenants_share_the_fleet_without_starvation(
        self, tmp_path, golden
    ):
        """Two concurrent grids on one serve broker: both finish
        byte-identical to inline, and while both have pending work
        the lease scheduler strictly alternates between them — the
        large grid cannot starve the small one."""
        with _service(tmp_path) as service:
            table = service.broker.table
            grants = []
            orig_lease = table.lease

            def recording_lease(owner, max_n=1):
                granted = orig_lease(owner, max_n)
                grants.extend(granted)
                return granted

            table.lease = recording_lease
            tenant_a = GridClient(service.address, name="tenant-a")
            tenant_b = GridClient(service.address, name="tenant-b")
            try:
                # both grids are queued before any worker can lease:
                # submits are two wire round trips, worker fork is
                # slower — but the fairness walk below does not
                # depend on that ordering either way
                tenant_a.submit(_grid_a())
                tenant_b.submit(_grid_b())
                # grants before this point predate tenant B's
                # admission and are exempt from the alternation bound
                preamble = len(grants)
                got_a = {
                    spec.canonical(): _digest(value)
                    for spec, value in tenant_a.stream(timeout=240)
                }
                got_b = {
                    spec.canonical(): _digest(value)
                    for spec, value in tenant_b.stream(timeout=240)
                }
            finally:
                tenant_a.close()
                tenant_b.close()

            assert got_a == {
                spec.canonical(): golden[spec.canonical()]
                for spec in _grid_a()
            }
            assert got_b == {
                spec.canonical(): golden[spec.canonical()]
                for spec in _grid_b()
            }

            # starvation bound: replay the grant log against the
            # group tags; while both grids still had pending keys,
            # consecutive grants never go to the same grid twice
            group_of = dict(table._group_of)
            groups = sorted({group_of[key] for key in grants})
            assert len(groups) == 2  # two tenants, two groups
            remaining = {
                group: sum(
                    1 for g in group_of.values() if g == group
                )
                for group in groups
            }
            previous = None
            for index, key in enumerate(grants):
                group = group_of[key]
                both_live = all(n > 0 for n in remaining.values())
                if (
                    both_live
                    and previous is not None
                    and index >= preamble
                ):
                    assert group != previous, (
                        f"two consecutive grants to {group} while "
                        "the other tenant had pending work"
                    )
                remaining[group] -= 1
                previous = group


class TestGracefulDrain:
    def test_drained_worker_exits_clean_with_zero_stranded_leases(
        self, tmp_path
    ):
        """A worker drained mid-queue finishes its in-flight batch,
        exits 0 holding no leases, and the queue still drains."""
        import threading

        specs = _grid_a()
        broker = Broker(
            (), cache=ResultCache(tmp_path), persistent=True,
            poll=0.02,
        )
        address = broker.start()
        stats_box = {}

        def run(name):
            stats_box[name] = run_worker(address=address, name=name)

        victim = threading.Thread(
            target=run, args=("victim",), daemon=True
        )
        try:
            with GridClient(address) as client:
                client.submit(specs)
                victim.start()
                # let the victim get at least one spec done so the
                # drain lands mid-queue, not pre-first-lease
                deadline = time.monotonic() + 240
                while (
                    time.monotonic() < deadline
                    and broker.stats.results < 1
                ):
                    time.sleep(0.01)
                assert broker.stats.results >= 1
                assert broker.drain_worker("victim") is True
                victim.join(timeout=240)
                assert not victim.is_alive()
                assert stats_box["victim"].drained
                assert broker.stats.drains == 1
                # zero stranded leases: nothing in the table still
                # names the drained worker as owner
                with broker._lock:
                    owners = {
                        info.owner
                        for info in broker.table._leases.values()
                    }
                assert "victim" not in owners
                # the rest of the queue drains via a relief worker
                relief = threading.Thread(
                    target=run, args=("relief",), daemon=True
                )
                relief.start()
                results = dict(client.stream(timeout=240))
            assert len(results) == len(specs)
            # drained + relief executions cover the grid exactly once
            assert broker.stats.results == len(specs)
        finally:
            broker.stop()

    def test_drain_frame_on_the_wire(self, tmp_path):
        """The v3 `drain` frame marks a named worker for retirement
        (idempotently) without touching anything else."""
        broker = Broker(
            (), cache=ResultCache(tmp_path), persistent=True,
            poll=0.02,
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            reply = raw.request({"type": "drain", "target": "w1"})
            assert reply == {"type": "ok", "draining": True}
            again = raw.request({"type": "drain", "target": "w1"})
            assert again["draining"] is True
            assert broker.stats.drains == 1  # idempotent
            bad = raw.request({"type": "drain", "target": ""})
            assert bad["draining"] is False
            raw.close()
        finally:
            broker.stop()


class TestWireAuth:
    TOKEN = "s3kr1t-fleet-token"

    def _broker(self, tmp_path, **kwargs):
        broker = Broker(
            (), cache=ResultCache(tmp_path), persistent=True,
            poll=0.02, **kwargs,
        )
        return broker, broker.start()

    def test_bad_token_client_is_rejected_before_dispatch(
        self, tmp_path
    ):
        broker, address = self._broker(
            tmp_path, auth_token=self.TOKEN
        )
        try:
            with pytest.raises(
                remote_mod.ProtocolError, match="auth"
            ):
                GridClient(
                    address, auth_token="wrong-token", name="evil"
                )
            assert broker.stats.specs == 0
            assert broker.stats.auth_failures >= 1
        finally:
            broker.stop()

    def test_unauthenticated_frames_are_refused_and_closed(
        self, tmp_path
    ):
        broker, address = self._broker(
            tmp_path, auth_token=self.TOKEN
        )
        try:
            raw = _RawClient(address)
            reply = raw.request({
                "type": "submit", "client": "evil",
                "specs": [census_job("em3d", SIZE)],
            })
            assert reply["type"] == "error"
            assert "auth" in reply["message"]
            # nothing was admitted, and the connection is closed
            assert broker.stats.specs == 0
            assert broker.stats.grids == 0
            with pytest.raises((OSError, remote_mod.ProtocolError)):
                raw.request({"type": "hello", "worker": "evil"})
            raw.close()
        finally:
            broker.stop()

    def test_authenticated_submit_and_worker_round_trip(
        self, tmp_path
    ):
        import threading

        broker, address = self._broker(
            tmp_path, auth_token=self.TOKEN
        )
        specs = [census_job("em3d", SIZE)]
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(
                address=address, name="w", auth_token=self.TOKEN
            ),
            daemon=True,
        )
        try:
            with GridClient(
                address, auth_token=self.TOKEN
            ) as client:
                client.submit(specs)
                worker.start()
                results = dict(client.stream(timeout=240))
            assert len(results) == len(specs)
            assert broker.stats.auth_failures == 0
        finally:
            broker.stop()
            worker.join(timeout=30)

    def test_token_bearing_client_interops_with_open_broker(
        self, tmp_path
    ):
        """A client configured with a token must still work against
        a broker that never enabled auth (the open broker acks the
        handshake instead of challenging)."""
        broker, address = self._broker(tmp_path)  # no auth_token
        try:
            with GridClient(
                address, auth_token=self.TOKEN
            ) as client:
                reply = client.submit([census_job("em3d", SIZE)])
                assert reply["type"] == "grid"
        finally:
            broker.stop()


class TestSubmitQuota:
    def test_over_quota_submit_gets_busy_then_admits_after_drain(
        self, tmp_path
    ):
        import threading

        broker = Broker(
            (), cache=ResultCache(tmp_path), persistent=True,
            poll=0.02, max_pending_per_client=1,
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            first = raw.request({
                "type": "submit", "client": "c",
                "specs": [census_job("em3d", SIZE)],
            })
            assert first["type"] == "grid"
            busy = raw.request({
                "type": "submit", "client": "c",
                "specs": [census_job("tomcatv", SIZE)],
            })
            assert busy["type"] == "busy"
            assert busy["retry_after"] > 0
            assert busy["outstanding"] == 1
            assert busy["limit"] == 1
            assert broker.stats.rejected_submits == 1
            # quotas are per client: another tenant is unaffected
            other = _RawClient(address)
            ok = other.request({
                "type": "submit", "client": "d",
                "specs": [census_job("tomcatv", SIZE)],
            })
            assert ok["type"] == "grid"
            # once c's backlog drains, the retry admits
            worker = threading.Thread(
                target=run_worker,
                kwargs=dict(address=address, name="w"),
                daemon=True,
            )
            worker.start()
            deadline = time.monotonic() + 240
            retry = busy
            while time.monotonic() < deadline:
                retry = raw.request({
                    "type": "submit", "client": "c",
                    "specs": [census_job("tomcatv", SIZE)],
                })
                if retry["type"] != "busy":
                    break
                time.sleep(0.05)
            assert retry["type"] == "grid"
            raw.close()
            other.close()
        finally:
            broker.stop()

    def test_grid_client_retries_busy_within_quota_wait(
        self, tmp_path
    ):
        """GridClient.submit absorbs transient busy replies and gives
        up with a clear error once quota_wait expires."""
        broker = Broker(
            (), cache=ResultCache(tmp_path), persistent=True,
            poll=0.02, max_pending_per_client=1,
        )
        address = broker.start()
        try:
            with GridClient(address, name="c") as client:
                client.submit([census_job("em3d", SIZE)])
                with pytest.raises(
                    RemoteExecutionError, match="quota"
                ):
                    client.submit(
                        [census_job("tomcatv", SIZE)],
                        quota_wait=0.3,
                    )
        finally:
            broker.stop()


class TestWelcomeTraceOffer:
    def test_single_fingerprint_grid_offers_on_welcome(
        self, tmp_path
    ):
        """A grid with one unique workload fingerprint pushes its
        trace offer in the welcome frame — fetchable before any
        lease."""
        specs = [
            timing_job("em3d", SIZE, PolicySpec(name=p))
            for p in ("base", "ltp")
        ]
        tkey = trace_key(get_workload("em3d", SIZE))
        broker = Broker(
            specs,
            cache=ResultCache(tmp_path),
            ship_traces=True,
            trace_cache=TraceCache(tmp_path / "traces"),
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            welcome = raw.request({"type": "hello", "worker": "w"})
            assert welcome["trace_offers"] == [tkey]
            # the offer is immediately fulfillable, no lease needed
            blob = raw.request({
                "type": "trace-fetch", "worker": "w", "key": tkey,
            })
            assert blob["type"] == "trace"
            assert blob["key"] == tkey
            assert isinstance(blob["blob"], bytes)
            raw.close()
        finally:
            broker.stop()

    def test_multi_fingerprint_grid_keeps_lazy_offers(self, tmp_path):
        specs = [census_job("em3d", SIZE), census_job("tomcatv", SIZE)]
        broker = Broker(
            specs, cache=ResultCache(tmp_path), ship_traces=True
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            welcome = raw.request({"type": "hello", "worker": "w"})
            assert "trace_offers" not in welcome
            raw.close()
        finally:
            broker.stop()

    def test_persistent_broker_offers_for_the_live_grid_only(
        self, tmp_path
    ):
        """Welcome offers track the *unresolved* work: a serve broker
        that drained a grid of one fingerprint must still push the
        offer for the single-fingerprint grid it is serving now."""
        cache = ResultCache(tmp_path)
        broker = Broker(
            (),
            cache=cache,
            persistent=True,
            ship_traces=True,
            trace_cache=TraceCache(tmp_path / "traces"),
        )
        address = broker.start()
        try:
            raw = _RawClient(address)
            grid_a = [census_job("em3d", SIZE)]
            raw.request({
                "type": "submit", "client": "c", "specs": grid_a,
            })
            tkey_a = trace_key(get_workload("em3d", SIZE))
            welcome = raw.request({"type": "hello", "worker": "w1"})
            assert welcome["trace_offers"] == [tkey_a]
            # grid A drains (simulated: its key completes)
            with broker._lock:
                for key in list(broker._by_key):
                    broker.table.complete(key)
            # grid B has a different single fingerprint: a fresh
            # worker must be offered *its* trace, not nothing
            grid_b = [census_job("tomcatv", SIZE)]
            raw.request({
                "type": "submit", "client": "c", "specs": grid_b,
            })
            tkey_b = trace_key(get_workload("tomcatv", SIZE))
            welcome = raw.request({"type": "hello", "worker": "w2"})
            assert welcome["trace_offers"] == [tkey_b]
            raw.close()
        finally:
            broker.stop()

    def test_worker_prefetches_welcome_offer_into_local_cache(
        self, tmp_path
    ):
        """End to end: the worker persists the welcome-offered blob
        and builds nothing locally."""
        specs = [
            timing_job("em3d", SIZE, PolicySpec(name=p))
            for p in ("base", "ltp")
        ]
        broker = Broker(
            specs,
            cache=ResultCache(tmp_path / "cache"),
            ship_traces=True,
            trace_cache=TraceCache(tmp_path / "broker-traces"),
            poll=0.02,
        )
        address = broker.start()
        try:
            stats = run_worker(
                address=address,
                trace_root=str(tmp_path / "worker-traces"),
                name="w",
            )
            results = list(broker.stream(timeout=120))
        finally:
            broker.stop()
        assert len(results) == len(specs)
        assert stats.traces_fetched == 1
        assert stats.trace_fallbacks == 0
        local = TraceCache(tmp_path / "worker-traces")
        tkey = trace_key(get_workload("em3d", SIZE))
        assert local.path_for_key(tkey).is_file()


class TestWireCompat:
    def test_v1_frames_are_still_accepted(self):
        """A v1 peer's frames decode on a v2 side (backward-compat
        accept across the wire-version bump)."""
        message = {"type": "hello", "worker": "old"}
        payload = pickle.dumps(
            message, protocol=pickle.HIGHEST_PROTOCOL
        )
        v1_frame = (
            struct.pack("!4sBI", b"LTPW", 1, len(payload)) + payload
        )
        assert read_frame(io.BytesIO(v1_frame)) == message

    def test_future_versions_are_rejected(self):
        payload = pickle.dumps({"type": "hello"})
        v9_frame = (
            struct.pack("!4sBI", b"LTPW", 9, len(payload)) + payload
        )
        with pytest.raises(remote_mod.ProtocolError, match="version"):
            read_frame(io.BytesIO(v9_frame))

    def test_current_version_is_v3(self):
        assert remote_mod.PROTOCOL_VERSION == 3
        assert remote_mod.ACCEPTED_VERSIONS == frozenset({1, 2, 3})

    def test_broker_replies_in_the_peers_version(self, tmp_path):
        """A v1 worker rejects v2-stamped frames, so true back-compat
        means the broker *echoes* the requester's version on every
        reply — checked against the raw header bytes."""
        broker = Broker(
            [census_job("em3d", SIZE)], cache=ResultCache(tmp_path)
        )
        address = broker.start()
        try:
            for version in (1, 2, 3):
                sock = socket.create_connection(address)
                stream = sock.makefile("rwb")
                payload = pickle.dumps(
                    {"type": "hello", "worker": f"v{version}"},
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                stream.write(struct.pack(
                    "!4sBI", b"LTPW", version, len(payload)
                ) + payload)
                stream.flush()
                header = stream.read(9)
                _, reply_version, length = struct.unpack(
                    "!4sBI", header
                )
                assert reply_version == version
                reply = pickle.loads(stream.read(length))
                assert reply["type"] == "welcome"
                sock.close()
        finally:
            broker.stop()


class TestWaitWorkersTimeout:
    def test_zero_worker_broker_fails_fast_instead_of_hanging(
        self, tmp_path
    ):
        backend = remote_mod.RemoteBackend(
            workers=0, wait_workers_timeout=1.0, poll=0.02
        )
        runner = Runner(
            cache=ResultCache(tmp_path), backend=backend
        )
        start = time.monotonic()
        with pytest.raises(
            RemoteExecutionError, match="no workers connected"
        ):
            runner.run([census_job("em3d", SIZE)])
        assert time.monotonic() - start < 30

    def test_warn_callback_fires_for_zero_workers(self, tmp_path):
        warnings = []
        backend = remote_mod.RemoteBackend(
            workers=0,
            wait_workers_timeout=0.5,
            poll=0.02,
            warn=warnings.append,
        )
        runner = Runner(cache=ResultCache(tmp_path), backend=backend)
        with pytest.raises(RemoteExecutionError):
            runner.run([census_job("em3d", SIZE)])
        assert warnings and "no local workers" in warnings[0]

    def test_external_worker_disarms_the_timeout(self, tmp_path):
        """The timeout covers *first contact* only: once any worker
        says hello, a slow grid must not trip it."""
        import threading

        spec = census_job("em3d", SIZE)
        broker = Broker(
            [spec], cache=ResultCache(tmp_path), poll=0.02
        )
        address = broker.start()
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(address=address, name="late"),
            daemon=True,
        )
        try:
            worker.start()
            results = list(broker.stream(
                timeout=120, first_worker_timeout=30
            ))
        finally:
            worker.join(timeout=30)
            broker.stop()
        assert len(results) == 1


class TestCliPlumbing:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.policy == "queue"
        assert args.min_workers == 0
        assert args.max_workers == 4
        assert args.cache_dir == ".repro-cache"
        assert args.grids is None

    def test_submit_parser(self):
        args = build_parser().parse_args([
            "submit", "fig9", "--connect", "127.0.0.1:7463",
            "--size", "tiny",
        ])
        assert args.experiment == "fig9"
        assert args.connect == ("127.0.0.1", 7463)

    def test_submit_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "fig9"])

    def test_attach_flag_builds_attached_backend(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--attach", "127.0.0.1:7463",
            "--cache-dir", str(tmp_path),
        ])
        backend = _runner_from_args(args).backend
        assert backend.name == "remote"
        assert backend.attach == ("127.0.0.1", 7463)
        assert backend.publishes is False

    def test_attach_conflicts_with_other_backends(self, capsys):
        code = main([
            "run-all", "--attach", "127.0.0.1:7463",
            "--backend", "pool", "--cache-dir", "/tmp/x",
        ])
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_attach_conflicts_with_cooperative(self, capsys):
        code = main([
            "run-all", "--attach", "127.0.0.1:7463",
            "--cooperative", "--cache-dir", "/tmp/x",
        ])
        assert code == 2
        assert "serve broker" in capsys.readouterr().err

    def test_attach_rejects_broker_only_flags(self, capsys):
        """Broker-side flags silently doing nothing under --attach
        would mislead operators — they are rejected explicitly."""
        for extra in (
            ["--remote-workers", "8"],
            ["--listen", "0.0.0.0:7999"],
            ["--lease-ttl", "5"],
            ["--wait-workers-timeout", "9"],
        ):
            code = main([
                "run-all", "--attach", "127.0.0.1:7463",
                "--cache-dir", "/tmp/x", *extra,
            ])
            assert code == 2
            assert "no effect" in capsys.readouterr().err

    def test_wait_workers_timeout_plumbs_through(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--backend", "remote",
            "--remote-workers", "0",
            "--wait-workers-timeout", "5",
            "--cache-dir", str(tmp_path),
        ])
        backend = _runner_from_args(args).backend
        assert backend.workers == 0
        assert backend.wait_workers_timeout == 5.0

    def test_serve_without_cache_is_rejected(self, capsys):
        code = main(["serve", "--no-cache"])
        assert code == 2
        assert "result cache" in capsys.readouterr().err

    def test_serve_rejects_inert_jobs_flag(self, capsys, tmp_path):
        code = main([
            "serve", "--cache-dir", str(tmp_path), "--jobs", "8",
        ])
        assert code == 2
        assert "no effect" in capsys.readouterr().err

    def test_serve_rejects_bad_policy_bounds(self, capsys, tmp_path):
        code = main([
            "serve", "--cache-dir", str(tmp_path),
            "--min-workers", "5", "--max-workers", "2",
        ])
        assert code == 2
        assert "max_workers" in capsys.readouterr().err


class TestSubmitCli:
    def test_submit_streams_and_renders(self, tmp_path, capsys):
        service = _service(tmp_path)
        service.start()
        host, port = service.address
        try:
            code = main([
                "submit", "table3", "--size", SIZE,
                "--workloads", "em3d",
                "--connect", f"{host}:{port}",
                "--timeout", "240",
            ])
        finally:
            service.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "grid streamed" in out
        assert service.broker.stats.grids_done == 1

    def test_submit_against_no_broker_fails_cleanly(self, capsys):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        code = main([
            "submit", "fig9", "--connect", f"127.0.0.1:{port}",
        ])
        assert code == 1
        assert "lost serve broker" in capsys.readouterr().err
