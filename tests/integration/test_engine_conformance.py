"""Byte-identical conformance between the timing-engine cores.

The readable reference core (:class:`TimingSimulator`) is the oracle;
the optimized core (:class:`FastTimingSimulator`) must reproduce its
:class:`TimingReport` pickle-byte-for-byte across the behavioral
surface the paper grid exercises: every policy, both protocol
variants, forwarding on and off, prompt and delayed
self-invalidation, real registry workloads and the synthetic sharing
patterns. This is the contract that lets engine choice stay *out* of
``JobSpec`` identity — a cached report is valid under either core.
"""

import pickle

import pytest

from repro.protocol.states import ProtocolVariant
from repro.runner.spec import PolicySpec, POLICY_NAMES
from repro.timing import (
    SystemConfig,
    TimingSimulator,
    make_engine,
    select_engine,
)
from repro.timing.engine_fast import FastTimingSimulator
from repro.workloads.registry import WORKLOAD_NAMES, build_program_set
from tests.conftest import migratory_rmw, producer_consumer

CORES = (TimingSimulator, FastTimingSimulator)


def _reports(programs, policy="ltp", **kwargs):
    """One TimingReport pickle per core, same configuration."""
    spec = PolicySpec(name=policy)
    return [
        pickle.dumps(core(spec.build, **kwargs).run(programs))
        for core in CORES
    ]


def _assert_identical(programs, **kwargs):
    ref, fast = _reports(programs, **kwargs)
    assert ref == fast


class TestPaperGridCells:
    """The full knob cross-product on one real workload."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize("variant", list(ProtocolVariant))
    def test_policy_by_variant(self, policy, variant):
        programs = build_program_set("em3d", "tiny")
        _assert_identical(programs, policy=policy, variant=variant)

    @pytest.mark.parametrize("forwarding", [False, True])
    @pytest.mark.parametrize("si_fire_delay", [0, 150])
    def test_forwarding_by_delay(self, forwarding, si_fire_delay):
        programs = build_program_set("em3d", "tiny")
        _assert_identical(
            programs,
            forwarding=forwarding,
            si_fire_delay=si_fire_delay,
        )

    def test_everything_at_once(self):
        """All the non-default knobs together in one cell."""
        programs = build_program_set("ocean", "tiny")
        _assert_identical(
            programs,
            policy="hybrid",
            variant=ProtocolVariant.DOWNGRADE,
            forwarding=True,
            si_fire_delay=90,
        )


class TestWorkloadSweep:
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_registry_workload(self, workload):
        programs = build_program_set(workload, "tiny")
        _assert_identical(
            programs, policy="ltp", forwarding=True, si_fire_delay=150
        )


class TestSyntheticPatterns:
    def test_producer_consumer(self):
        _assert_identical(
            producer_consumer(iterations=15, num_consumers=3),
            policy="ltp",
            si_fire_delay=40,
        )

    def test_migratory(self):
        _assert_identical(
            migratory_rmw(iterations=15, nodes=4), policy="dsi"
        )

    def test_custom_config(self):
        _assert_identical(
            producer_consumer(iterations=10),
            policy="last-pc",
            config=SystemConfig(
                num_nodes=2, network_latency=33, engine_occupancy=7
            ),
        )


class TestEventCountParity:
    """Both cores expose ``event_counts`` and — because they inline
    the same immediate operations — count every dispatched event kind
    identically. ``repro profile`` and the
    ``repro_engine_events_total`` metric rely on the mapping meaning
    the same thing whichever core ran."""

    @pytest.mark.parametrize("si_fire_delay", [0, 150])
    def test_counts_match_exactly(self, si_fire_delay):
        programs = build_program_set("em3d", "tiny")
        spec = PolicySpec(name="ltp")
        counts = []
        for core in CORES:
            engine = core(
                spec.build,
                forwarding=True,
                si_fire_delay=si_fire_delay,
            )
            engine.run(programs)
            counts.append(engine.event_counts)
        ref, fast = counts
        assert ref == fast
        assert ref  # non-empty: the workload scheduled real events
        assert all(n >= 0 for n in ref.values())
        from repro.timing.core import EVENT_KIND_NAMES

        assert set(ref) == set(EVENT_KIND_NAMES)


class TestSelectionRouting:
    """`make_engine` must honor the process-wide selection, so runner
    traffic actually reaches the chosen core."""

    def test_make_engine_routes_to_selection(self):
        spec = PolicySpec(name="base")
        try:
            select_engine("reference")
            assert isinstance(
                make_engine(spec.build), TimingSimulator
            )
            select_engine("fast")
            assert isinstance(
                make_engine(spec.build), FastTimingSimulator
            )
        finally:
            select_engine("fast")

    def test_selected_cores_agree_end_to_end(self):
        programs = producer_consumer(iterations=8)
        spec = PolicySpec(name="ltp")
        outputs = []
        try:
            for name in ("reference", "fast"):
                select_engine(name)
                engine = make_engine(spec.build, si_fire_delay=25)
                outputs.append(pickle.dumps(engine.run(programs)))
        finally:
            select_engine("fast")
        assert outputs[0] == outputs[1]
