"""Integration tests asserting the paper's qualitative claims.

These run the real workload generators through the real simulators at
reduced size ("tiny", a few hundred thousand events total across the
module) and check the *shape* of every headline result: who wins, where
the predictors fail, which side of 1.0 the speedups land on. Exact
percentages vary with scale; the orderings must not.
"""

import pytest

from repro.core import (
    GlobalLTP,
    LastPCPredictor,
    NullPolicy,
    PerBlockLTP,
    TruncatedAddEncoder,
)
from repro.dsi import DSIPolicy
from repro.sim import AccuracySimulator
from repro.timing import TimingSimulator
from repro.workloads import WORKLOAD_NAMES, get_workload

SIZE = "tiny"
# enough iterations at tiny size to get past predictor training
ITER = 16


@pytest.fixture(scope="module")
def accuracy():
    """predicted-fraction[policy][workload] at tiny scale."""
    out = {"dsi": {}, "last-pc": {}, "ltp": {}, "global": {}}
    mis = {"dsi": {}, "last-pc": {}, "ltp": {}, "global": {}}
    factories = {
        "dsi": lambda n: DSIPolicy(),
        "last-pc": lambda n: LastPCPredictor(),
        "ltp": lambda n: PerBlockLTP(),
        "global": lambda n: GlobalLTP(TruncatedAddEncoder(30)),
    }
    for name in WORKLOAD_NAMES:
        ps = get_workload(name, SIZE, iterations=ITER).build()
        for policy, factory in factories.items():
            rep = AccuracySimulator(factory).run(ps)
            out[policy][name] = rep.predicted_fraction
            mis[policy][name] = rep.mispredicted_fraction
    return out, mis


class TestFigure6Shapes:
    def test_ltp_beats_dsi_on_average(self, accuracy):
        pred, _ = accuracy
        def avg(p):
            return sum(pred[p].values()) / len(pred[p])
        assert avg("ltp") > avg("dsi") + 0.15

    def test_ltp_beats_last_pc_on_average(self, accuracy):
        pred, _ = accuracy
        def avg(p):
            return sum(pred[p].values()) / len(pred[p])
        assert avg("ltp") > avg("last-pc") + 0.15

    def test_barnes_is_dsi_only_win(self, accuracy):
        """barnes is the one application where DSI out-predicts LTP
        (versioning keys on blocks, not on the mutating traces)."""
        pred, _ = accuracy
        assert pred["dsi"]["barnes"] > pred["ltp"]["barnes"]

    def test_em3d_everyone_high(self, accuracy):
        pred, _ = accuracy
        for policy in ("dsi", "last-pc", "ltp"):
            assert pred[policy]["em3d"] > 0.7, policy

    def test_instruction_reuse_kills_last_pc(self, accuracy):
        """moldyn / dsmc / tomcatv: same-PC multi-touch traces. (moldyn
        gets a looser margin: at tiny scale its partner structure
        degenerates toward fewer multi-touch runs.)"""
        pred, _ = accuracy
        for name in ("dsmc", "tomcatv"):
            assert pred["last-pc"][name] < pred["ltp"][name] - 0.3, name
        assert pred["last-pc"]["moldyn"] < pred["ltp"]["moldyn"] - 0.2

    def test_migratory_exclusion_limits_dsi(self, accuracy):
        """unstructured and moldyn RMW upgrades are never candidates."""
        pred, _ = accuracy
        for name in ("unstructured", "moldyn"):
            assert pred["dsi"][name] < pred["ltp"][name] - 0.3, name

    def test_dsi_prematures_exceed_ltp(self, accuracy):
        """DSI has no confidence filter; its misprediction rate is an
        order of magnitude above LTP's (14% vs 3% in the paper)."""
        _, mis = accuracy
        def avg(p):
            return sum(mis[p].values()) / len(mis[p])
        assert avg("dsi") > 3 * avg("ltp")

    def test_confidence_keeps_trace_predictors_clean(self, accuracy):
        _, mis = accuracy
        for policy in ("last-pc", "ltp"):
            avg = sum(mis[policy].values()) / len(mis[policy])
            assert avg < 0.08, policy


class TestFigure8Shape:
    def test_global_table_loses_on_aliasing_workloads(self, accuracy):
        """Cross-block subtrace aliasing: tomcatv's outer/inner rows,
        unstructured's variable edge multiplicity, moldyn's reduction
        runs."""
        pred, _ = accuracy
        for name in ("tomcatv", "unstructured", "moldyn"):
            assert pred["global"][name] < pred["ltp"][name] - 0.1, name

    def test_global_table_worse_on_average(self, accuracy):
        pred, _ = accuracy
        def avg(p):
            return sum(pred[p].values()) / len(pred[p])
        assert avg("global") < avg("ltp") - 0.05


class TestOracleCeiling:
    @pytest.mark.parametrize("name", ["em3d", "tomcatv", "moldyn"])
    def test_oracle_dominates_ltp(self, name):
        ps = get_workload(name, SIZE, iterations=ITER).build()
        sim = AccuracySimulator(lambda n: PerBlockLTP())
        ltp = sim.run(ps)
        oracle = sim.run_oracle(ps)
        assert oracle.predicted_fraction >= ltp.predicted_fraction
        assert oracle.mispredicted == 0


class TestFigure9Shapes:
    @pytest.fixture(scope="class")
    def timing(self):
        out = {}
        for name in ("em3d", "tomcatv", "dsmc", "barnes"):
            ps = get_workload(name, SIZE, iterations=ITER).build()
            out[name] = {
                "base": TimingSimulator(lambda n: NullPolicy()).run(ps),
                "dsi": TimingSimulator(lambda n: DSIPolicy()).run(ps),
                "ltp": TimingSimulator(lambda n: PerBlockLTP()).run(ps),
            }
        return out

    def test_ltp_speeds_up_regular_workloads(self, timing):
        for name in ("em3d", "tomcatv"):
            runs = timing[name]
            assert runs["ltp"].speedup_over(runs["base"]) > 1.05, name

    def test_ltp_beats_dsi_where_dsi_mispredicts(self, timing):
        runs = timing["dsmc"]
        assert runs["ltp"].speedup_over(runs["base"]) > \
            runs["dsi"].speedup_over(runs["base"])

    def test_barnes_ltp_near_neutral(self, timing):
        """The paper's one LTP slowdown (<1%): barnes stays within a
        few percent of base either way."""
        runs = timing["barnes"]
        assert 0.93 < runs["ltp"].speedup_over(runs["base"]) < 1.1

    def test_dsi_bursts_inflate_queueing(self, timing):
        """Table 4: DSI's barrier bursts raise mean directory queueing
        well above both base and LTP in em3d."""
        runs = timing["em3d"]
        assert runs["dsi"].directory.mean_queueing > \
            3 * runs["base"].directory.mean_queueing
        assert runs["dsi"].directory.mean_queueing > \
            3 * runs["ltp"].directory.mean_queueing

    def test_ltp_timeliness_high(self, timing):
        for name in ("em3d", "tomcatv"):
            assert timing[name]["ltp"].selfinval.timeliness > 0.85, name

    def test_invalidation_traffic_reduced(self, timing):
        for name in ("em3d", "tomcatv"):
            runs = timing[name]
            assert runs["ltp"].external_invalidations < \
                runs["base"].external_invalidations * 0.7, name
