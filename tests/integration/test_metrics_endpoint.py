"""End-to-end scrape of a live, tokened broker's metrics endpoint.

One persistent broker with wire auth on, one real worker heartbeating
against it, one grid submitted and drained — then the observability
surface is read back exactly the way an external collector would:
``GET /metrics`` (Prometheus text) and ``GET /healthz`` (JSON) over
HTTP. Asserts the full telemetry round trip:

* broker-side counters (frames, leases, results, auth failures) and
  the lease-to-publish histogram show the traffic that actually
  happened;
* the worker's registry snapshot piggybacked on heartbeat frames
  comes back as ``worker``-labeled series, and the broker-stamped
  round-trip gauge is present and sane;
* span records stitch one spec's lease -> execute -> publish into a
  single trace id across the broker and worker roles.
"""

import json
import threading
import time
import urllib.request

import pytest

import repro.telemetry as tm
from repro.runner import (
    Broker,
    GridClient,
    ResultCache,
    census_job,
    run_worker,
)
from repro.runner.remote import ProtocolError
from repro.telemetry import MetricsServer
from repro.telemetry.top import (
    metric_total,
    parse_prometheus,
    render_screen,
)

SIZE = "tiny"
TOKEN = "scrape-me-if-you-can"


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return (
            resp.status,
            resp.headers.get("Content-Type", ""),
            resp.read().decode("utf-8"),
        )


def _wait(predicate, timeout: float = 60.0, interval: float = 0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(autouse=True)
def _telemetry_on(tmp_path):
    was = tm.enabled()
    tm.set_enabled(True)
    tm.configure(tmp_path / "telemetry")
    yield
    tm.set_enabled(was)
    tm.shutdown()


class TestLiveScrape:
    def test_tokened_broker_scrapes_end_to_end(self, tmp_path):
        grid = [census_job("em3d", SIZE), census_job("tomcatv", SIZE)]
        cache = ResultCache(tmp_path / "cache")
        broker = Broker(
            (),
            cache=cache,
            persistent=True,
            lease_ttl=0.4,  # beats every ~0.1s -> rtt shows up fast
            poll=0.02,
            auth_token=TOKEN,
        )
        address = broker.start()
        server = MetricsServer(
            metrics_fn=broker.render_metrics,
            health_fn=broker.health,
            port=0,
        )
        mhost, mport = server.start()
        base = f"http://{mhost}:{mport}"
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(
                address=address,
                batch=1,
                name="scrape-w",
                auth_token=TOKEN,
            ),
            daemon=True,
        )
        worker.start()
        try:
            # an impostor with the wrong token is refused at hello
            # and counted
            with pytest.raises(ProtocolError):
                run_worker(
                    address=address, name="impostor",
                    auth_token="wrong-token",
                )

            with GridClient(address, auth_token=TOKEN) as client:
                client.submit(grid)
                results = dict(client.stream(timeout=240))
            assert len(results) == len(grid)

            def settled():
                _, _, body = _get(base, "/healthz")
                doc = json.loads(body)
                info = doc.get("workers", {}).get("scrape-w")
                return (
                    info is not None
                    and info.get("rtt_s") is not None
                    and doc.get("queue_depth") == 0
                )

            assert _wait(settled), "worker rtt never reached /healthz"

            # -- /healthz ------------------------------------------
            status, ctype, body = _get(base, "/healthz")
            assert status == 200
            assert "json" in ctype
            doc = json.loads(body)
            assert doc["closing"] is False
            assert doc["queue_depth"] == 0
            assert doc["grids_pending"] == {}
            assert doc["stats"]["results"] >= len(grid)
            assert doc["stats"]["auth_failures"] >= 1
            info = doc["workers"]["scrape-w"]
            assert info["live"] is True
            assert 0 < info["rtt_s"] < 5.0

            # -- /metrics ------------------------------------------
            status, ctype, text = _get(base, "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain; version=0.0.4")
            samples = parse_prometheus(text)
            assert metric_total(
                samples, "repro_broker_frames_total"
            ) > 0
            assert metric_total(
                samples, "repro_broker_leases_total",
                worker="scrape-w",
            ) >= len(grid)
            assert metric_total(
                samples, "repro_broker_results_total", outcome="first"
            ) >= len(grid)
            assert metric_total(
                samples, "repro_broker_auth_failures_total"
            ) >= 1
            assert metric_total(
                samples, "repro_broker_lease_to_publish_seconds_count"
            ) >= len(grid)
            # the broker-stamped per-worker round-trip gauge (the
            # process-global registry may hold series from earlier
            # tests' workers — select ours)
            (rtt_value,) = [
                value
                for labels, value in samples[
                    "repro_broker_heartbeat_rtt_seconds"
                ]
                if dict(labels).get("worker") == "scrape-w"
            ]
            assert 0 < rtt_value < 5.0
            # worker-registry series shipped inside heartbeat frames
            # come back labeled with the worker's name
            assert metric_total(
                samples, "repro_worker_executed_total",
                worker="scrape-w", outcome="ok",
            ) >= len(grid)

            # the top renderer accepts the real documents
            frame = render_screen(doc, samples)
            assert "scrape-w" in frame

            # -- unknown paths -------------------------------------
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(base, "/nope")
            assert err.value.code == 404

            # -- shutdown is observable ----------------------------
            broker.begin_shutdown()
            assert _wait(
                lambda: json.loads(_get(base, "/healthz")[2])[
                    "closing"
                ]
            )
        finally:
            broker.begin_shutdown()
            worker.join(timeout=30)
            server.stop()
            broker.stop()
        assert not worker.is_alive()

    def test_spans_stitch_lease_execute_publish(self, tmp_path):
        grid = [census_job("em3d", SIZE)]
        cache = ResultCache(tmp_path / "cache")
        broker = Broker(grid, cache=cache, poll=0.02)
        address = broker.start()
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(address=address, name="tracer"),
            daemon=True,
        )
        worker.start()
        try:
            streamed = list(broker.stream(timeout=240))
        finally:
            worker.join(timeout=30)
            broker.stop()
        assert len(streamed) == len(grid)
        spans = list(tm.read_spans(tm.configured_dir()))
        by_trace = {}
        for record in spans:
            by_trace.setdefault(record["trace"], set()).add(
                record["name"]
            )
        # at least one trace contains both roles' spans: the id the
        # broker minted at lease time came back around the wire
        assert any(
            {"worker.execute", "broker.publish"} <= names
            for names in by_trace.values()
        ), f"no stitched trace in {by_trace}"
