"""Cross-backend conformance suite.

Every execution backend — inline, multiprocessing pool, cooperative
shared-filesystem, and remote TCP — implements one contract
(`ExecutionBackend.run(specs, runner)`), and this suite pins it down
with a single parametrized matrix: for the same grid every backend
must produce byte-identical reports, execute each unique spec exactly
once fleet-wide, leak no claim files, and account identically in
``RunnerStats`` (cold run all-executed, warm run all-cache-hits).
The matrix is additionally parametrized over the cache/wire codec
(``none``/``zlib``) — compression must be invisible to every one of
those properties. A future job-queue backend joins the matrix by
adding one factory.
"""

import hashlib
import pickle

import pytest

from repro.runner import (
    CooperativeBackend,
    InlineBackend,
    PolicySpec,
    PoolBackend,
    RemoteBackend,
    ResultCache,
    Runner,
    accuracy_job,
    census_job,
    oracle_job,
    timing_job,
)

SIZE = "tiny"

BACKENDS = ("inline", "pool", "cooperative", "remote")

CODECS = ("none", "zlib")


def _grid():
    return [
        timing_job("em3d", SIZE, PolicySpec(name=p))
        for p in ("base", "dsi", "ltp")
    ] + [
        accuracy_job("em3d", SIZE, PolicySpec(name="ltp", bits=13)),
        oracle_job("em3d", SIZE),
        census_job("em3d", SIZE),
        census_job("tomcatv", SIZE),
    ]


def _digest(value) -> str:
    return hashlib.sha256(pickle.dumps(value)).hexdigest()


def _digests(results) -> dict:
    return {
        spec.canonical(): _digest(value)
        for spec, value in results.items()
    }


def _make_runner(kind: str, cache_dir, codec: str = "none") -> Runner:
    cache = ResultCache(cache_dir, codec=codec)
    if kind == "inline":
        return Runner(cache=cache, backend=InlineBackend())
    if kind == "pool":
        return Runner(cache=cache, backend=PoolBackend(jobs=2))
    if kind == "cooperative":
        return Runner(
            cache=cache,
            backend=CooperativeBackend(
                jobs=1, claim_ttl=20.0, poll_interval=0.02
            ),
        )
    # the acceptance-criteria configuration: a 2-worker remote run
    # over localhost (codec also compresses the wire report frames)
    return Runner(
        cache=cache,
        backend=RemoteBackend(
            workers=2, lease_ttl=20.0, poll=0.02, batch=2,
            timeout=240, codec=codec,
        ),
    )


@pytest.fixture(scope="module")
def serial_golden():
    """Fresh serial, uncached run of the grid — the byte-level oracle."""
    return _digests(Runner().run(_grid()))


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("kind", BACKENDS)
class TestBackendConformance:
    def test_cold_run_is_exactly_once_and_byte_identical(
        self, kind, codec, tmp_path, serial_golden
    ):
        grid = _grid()
        runner = _make_runner(kind, tmp_path, codec)
        results = runner.run(grid)

        # byte-identical to the serial oracle, whatever the transport
        assert _digests(results) == serial_golden

        # exactly-once execution, and the accounting says so
        assert runner.stats.executed == len(grid)
        assert runner.stats.cache_hits == 0
        assert runner.stats.peer_hits == 0

        # every backend leaves the cache fully populated...
        assert ResultCache(tmp_path).entries() == len(grid)
        # ...and leaks no claim files (inline/pool never create any;
        # cooperative releases after publishing; the remote broker's
        # advisory lease mirror is cleared as results land)
        assert list((tmp_path / "claims").glob("*.claim")) == []

    def test_warm_run_is_all_cache_hits(
        self, kind, codec, tmp_path, serial_golden
    ):
        grid = _grid()
        _make_runner(kind, tmp_path, codec).run(grid)
        second = _make_runner(kind, tmp_path, codec)
        results = second.run(grid)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(grid)
        assert second.stats.cache_fraction == 1.0
        assert _digests(results) == serial_golden

    def test_requested_duplicates_collapse(self, kind, codec, tmp_path):
        spec = census_job("em3d", SIZE)
        runner = _make_runner(kind, tmp_path, codec)
        results = runner.run([spec, spec, spec])
        assert results[spec].total_blocks > 0
        assert runner.stats.requested == 3
        assert runner.stats.dedup_hits == 2
        assert runner.stats.executed == 1


class TestRemoteFleetAccounting:
    def test_two_worker_fleet_executes_each_spec_once(
        self, tmp_path, serial_golden
    ):
        """The worker fleet — not just the runner — must execute each
        spec exactly once: no duplicate reports, no reassignments on a
        healthy run, and both workers participate in the protocol."""
        grid = _grid()
        backend = RemoteBackend(
            workers=2, lease_ttl=20.0, poll=0.02, timeout=240
        )
        runner = Runner(cache=ResultCache(tmp_path), backend=backend)
        results = runner.run(grid)
        assert _digests(results) == serial_golden
        stats = backend.broker.stats
        assert stats.specs == len(grid)
        assert stats.results == len(grid)
        assert stats.duplicates == 0
        assert backend.broker.table.reclaimed == 0
        assert len(stats.workers) == 2


class TestCodecTransparency:
    @pytest.mark.parametrize("cold,warm", [("none", "zlib"), ("zlib", "none")])
    def test_warm_run_reads_entries_written_under_other_codec(
        self, tmp_path, serial_golden, cold, warm
    ):
        """Switching --codec between runs must never invalidate the
        cache: reads decode whatever codec wrote the entry."""
        grid = _grid()
        _make_runner("inline", tmp_path, cold).run(grid)
        second = _make_runner("inline", tmp_path, warm)
        results = second.run(grid)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(grid)
        assert _digests(results) == serial_golden


class TestBackendSelection:
    def test_legacy_flags_map_to_backends(self, tmp_path):
        assert Runner().backend.name == "inline"
        assert Runner(jobs=4).backend.name == "pool"
        coop = Runner(
            cooperative=True,
            cache=ResultCache(tmp_path),
            claim_ttl=7.0,
            poll_interval=0.05,
        )
        assert coop.backend.name == "cooperative"
        assert coop.backend.claim_ttl == 7.0
        assert coop.backend.poll_interval == 0.05

    def test_cache_requirement_is_enforced(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Runner(cooperative=True)
        with pytest.raises(ConfigurationError):
            Runner(backend=CooperativeBackend())

    def test_self_publishing_flags(self):
        assert not InlineBackend().publishes
        assert not PoolBackend().publishes
        assert CooperativeBackend().publishes
        assert RemoteBackend().publishes
