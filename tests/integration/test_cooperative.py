"""Concurrency stress tests for cooperative grid execution.

The headline test launches three real processes against one shared
cache directory on the same grid and asserts the claim protocol's
contract: every unique JobSpec executes exactly once across the fleet,
every process ends holding the complete result set byte-identical to a
serial run, and no claim files survive the run.
"""

import hashlib
import json
import multiprocessing
import pickle
import threading
import time

import pytest

from repro.runner import (
    ClaimStore,
    PolicySpec,
    ResultCache,
    Runner,
    accuracy_job,
    census_job,
    execute_spec,
    oracle_job,
    timing_job,
)

SIZE = "tiny"


def _grid():
    return [
        timing_job("em3d", SIZE, PolicySpec(name=p))
        for p in ("base", "dsi", "ltp")
    ] + [
        accuracy_job("em3d", SIZE, PolicySpec(name="ltp", bits=13)),
        oracle_job("em3d", SIZE),
        census_job("em3d", SIZE),
        census_job("tomcatv", SIZE),
    ]


def _digest(value) -> str:
    return hashlib.sha256(pickle.dumps(value)).hexdigest()


def _cooperative_worker(cache_dir: str, out_path: str) -> None:
    """One fleet member: run the whole grid cooperatively, then write
    its accounting + result digests for the parent to check."""
    runner = Runner(
        cooperative=True,
        cache=ResultCache(cache_dir),
        poll_interval=0.02,
        claim_ttl=20.0,
    )
    results = runner.run(_grid())
    payload = {
        "executed": runner.stats.executed,
        "peer_hits": runner.stats.peer_hits,
        "cache_hits": runner.stats.cache_hits,
        "digests": {
            spec.canonical(): _digest(value)
            for spec, value in results.items()
        },
    }
    with open(out_path, "w") as handle:
        json.dump(payload, handle)


@pytest.fixture(scope="module")
def serial_golden():
    """Fresh serial, uncached run of the grid — the byte-level oracle."""
    results = Runner().run(_grid())
    return {
        spec.canonical(): _digest(value)
        for spec, value in results.items()
    }


class TestThreeProcessStress:
    def test_fleet_splits_grid_exactly_once(
        self, tmp_path, serial_golden
    ):
        cache_dir = tmp_path / "shared-cache"
        ctx = multiprocessing.get_context("fork")
        outs = [tmp_path / f"worker-{i}.json" for i in range(3)]
        procs = [
            ctx.Process(
                target=_cooperative_worker,
                args=(str(cache_dir), str(out)),
            )
            for out in outs
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=300)
            assert proc.exitcode == 0, "cooperative worker crashed"

        reports = [json.loads(out.read_text()) for out in outs]
        grid = _grid()

        # every unique job executed exactly once across the fleet
        assert sum(r["executed"] for r in reports) == len(grid)

        # each process holds the complete grid, byte-identical to the
        # serial run (digest of the pickled report)
        for r in reports:
            assert r["digests"] == serial_golden
            # accounting balances: everything not executed locally was
            # observed via a peer (or an initial cache hit on restart)
            assert (
                r["executed"] + r["peer_hits"] + r["cache_hits"]
                == len(grid)
            )

        # no claim files leak
        claims_dir = cache_dir / "claims"
        assert list(claims_dir.glob("*.claim")) == []

        # the shared cache holds exactly the grid
        assert ResultCache(cache_dir).entries() == len(grid)

    def test_restart_after_fleet_is_all_cache_hits(
        self, tmp_path, serial_golden
    ):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "first.json"
        _cooperative_worker(str(cache_dir), str(out))
        late = Runner(
            cooperative=True,
            cache=ResultCache(cache_dir),
            poll_interval=0.02,
        )
        results = late.run(_grid())
        assert late.stats.executed == 0
        assert late.stats.cache_hits == len(_grid())
        assert {
            spec.canonical(): _digest(value)
            for spec, value in results.items()
        } == serial_golden


class TestClaimRecovery:
    def test_stale_claim_from_crashed_owner_is_taken_over(
        self, tmp_path, serial_golden
    ):
        """A claim whose owner stopped heartbeating (simulated crash)
        must not block the grid: the survivor reaps and executes it."""
        cache = ResultCache(tmp_path)
        spec = census_job("em3d", SIZE)
        # forge a claim from a "crashed" remote process: fake host (so
        # the pid fast-path can't apply) and an hour-old heartbeat
        crashed = ClaimStore(
            tmp_path, ttl=0.5, owner=("host-crashed", 1),
            clock=lambda: time.time() - 3600,
        )
        assert crashed.acquire(cache.key(spec))
        runner = Runner(
            cooperative=True, cache=cache,
            poll_interval=0.02, claim_ttl=0.5,
        )
        results = runner.run(_grid())
        assert runner.stats.executed == len(_grid())
        assert _digest(results[spec]) == serial_golden[spec.canonical()]
        assert list((tmp_path / "claims").glob("*.claim")) == []

    def test_waits_for_live_peer_then_serves_its_result(self, tmp_path):
        """While a live peer holds a claim, the runner polls instead of
        re-executing, and picks the result up once published."""
        cache = ResultCache(tmp_path)
        spec = census_job("em3d", SIZE)
        key = cache.key(spec)
        peer = ClaimStore(tmp_path, ttl=30.0, owner=("host-peer", 1))
        assert peer.acquire(key)

        value = execute_spec(spec)

        def publish_later():
            time.sleep(0.4)
            cache.put(spec, value)
            peer.release(key)

        thread = threading.Thread(target=publish_later)
        thread.start()
        try:
            runner = Runner(
                cooperative=True, cache=cache, poll_interval=0.02,
                claim_ttl=30.0,
            )
            results = runner.run(_grid())
        finally:
            thread.join()
        assert runner.stats.peer_hits == 1
        assert runner.stats.executed == len(_grid()) - 1
        assert pickle.dumps(results[spec]) == pickle.dumps(value)

    def test_cooperative_with_pool_matches_serial(
        self, tmp_path, serial_golden
    ):
        """jobs>1 in cooperative mode runs claim batches on one
        long-lived pool; results must still be byte-identical and
        claims must not leak."""
        runner = Runner(
            jobs=2, cooperative=True, cache=ResultCache(tmp_path),
            poll_interval=0.02,
        )
        results = runner.run(_grid())
        assert runner.stats.executed == len(_grid())
        assert {
            spec.canonical(): _digest(value)
            for spec, value in results.items()
        } == serial_golden
        assert list((tmp_path / "claims").glob("*.claim")) == []

    def test_execution_error_releases_held_claims(self, tmp_path):
        """If execution raises, claims must be freed so peers can take
        the specs over immediately instead of waiting out the ttl."""
        cache = ResultCache(tmp_path)
        runner = Runner(cooperative=True, cache=cache, poll_interval=0.02)
        bad = census_job("em3d", SIZE, overrides={"num_nodes": 1})
        with pytest.raises(Exception):
            runner.run([bad])
        assert list((tmp_path / "claims").glob("*.claim")) == []
