"""Property-based tests: the timing engine with lock-using programs.

Random balanced lock/barrier programs must complete without deadlock
under any policy, keep critical sections mutually exclusive, and
preserve the self-invalidation accounting identities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NullPolicy, PerBlockLTP
from repro.dsi import DSIPolicy
from repro.timing import SystemConfig, TimingSimulator
from repro.trace.program import (
    Access,
    Barrier,
    LockAcquire,
    LockRelease,
    Program,
    ProgramSet,
)

LOCK_ADDR = 0x8000
DATA_ADDR = 0x9000


@st.composite
def lock_programs(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    num_locks = draw(st.integers(min_value=1, max_value=2))
    progs = {}
    for node in range(num_nodes):
        p = Program(node)
        sections = draw(st.integers(min_value=0, max_value=3))
        for s in range(sections):
            lock = draw(st.integers(min_value=0, max_value=num_locks - 1))
            fixed = draw(
                st.one_of(st.none(), st.integers(min_value=1, max_value=3))
            )
            p.append(LockAcquire(
                lock, LOCK_ADDR + 32 * lock, 0x10, 0x14,
                fixed_spins=fixed,
            ))
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                blk = draw(st.integers(min_value=0, max_value=3))
                p.append(Access(0x20, DATA_ADDR + 32 * blk,
                                draw(st.booleans())))
            p.append(LockRelease(lock, LOCK_ADDR + 32 * lock, 0x18))
        p.append(Barrier(1))
        progs[node] = p
    return ProgramSet("lock-random", num_nodes, progs)


@given(lock_programs())
@settings(max_examples=30, deadline=None)
def test_completes_under_null_policy(ps):
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    rep = TimingSimulator(lambda n: NullPolicy(), cfg).run(ps)
    assert len(rep.per_node_finish) == ps.num_nodes


@given(lock_programs())
@settings(max_examples=20, deadline=None)
def test_completes_under_ltp_and_dsi(ps):
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    for factory in (lambda n: PerBlockLTP(), lambda n: DSIPolicy()):
        rep = TimingSimulator(factory, cfg).run(ps)
        s = rep.selfinval
        assert (
            s.timely_correct + s.late_correct + s.premature
            + s.unresolved == s.fired
        )


@given(lock_programs())
@settings(max_examples=20, deadline=None)
def test_forwarding_safe_with_locks(ps):
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    rep = TimingSimulator(
        lambda n: PerBlockLTP(), cfg, forwarding=True
    ).run(ps)
    f = rep.forwarding
    assert f is not None
    assert f.useful + f.wasted <= f.forwards
