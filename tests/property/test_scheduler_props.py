"""Property-based tests for the interleaving scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.events import MemoryAccess
from repro.trace.program import Access, Barrier, Program, ProgramSet
from repro.trace.scheduler import interleave


@st.composite
def barrier_consistent_programs(draw):
    """Random per-node programs with equal barrier counts."""
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    num_phases = draw(st.integers(min_value=1, max_value=4))
    progs = {}
    for node in range(num_nodes):
        p = Program(node)
        for phase in range(num_phases):
            k = draw(st.integers(min_value=0, max_value=6))
            for i in range(k):
                pc = draw(st.integers(min_value=4, max_value=2**20))
                blk = draw(st.integers(min_value=0, max_value=7))
                wr = draw(st.booleans())
                p.append(Access(pc, 0x1000 + 32 * blk, wr))
            p.append(Barrier(phase))
        progs[node] = p
    return ProgramSet("random", num_nodes, progs)


@given(barrier_consistent_programs())
@settings(max_examples=60, deadline=None)
def test_every_access_emitted_exactly_once(ps):
    emitted = {}
    for ev in interleave(ps):
        if isinstance(ev, MemoryAccess):
            emitted.setdefault(ev.node, []).append(
                (ev.pc, ev.address, ev.is_write)
            )
    for node, prog in ps.programs.items():
        expected = [
            (s.pc, s.address, s.is_write)
            for s in prog.steps
            if isinstance(s, Access)
        ]
        assert emitted.get(node, []) == expected


@given(barrier_consistent_programs())
@settings(max_examples=40, deadline=None)
def test_interleaving_is_deterministic(ps):
    def fingerprint():
        return [
            (type(e).__name__, e.node, getattr(e, "pc", -1))
            for e in interleave(ps)
        ]

    assert fingerprint() == fingerprint()


@given(barrier_consistent_programs(),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_quantum_preserves_per_node_order(ps, quantum):
    seen = {}
    for ev in interleave(ps, quantum=quantum):
        if isinstance(ev, MemoryAccess):
            seen.setdefault(ev.node, []).append(ev.pc)
    for node, prog in ps.programs.items():
        expected = [s.pc for s in prog.steps if isinstance(s, Access)]
        assert seen.get(node, []) == expected


@given(barrier_consistent_programs())
@settings(max_examples=40, deadline=None)
def test_barrier_phases_do_not_overlap(ps):
    """No node's phase-k access may appear after another node's
    phase-(k+1) access has appeared... i.e. barriers are barriers."""
    phase = {node: 0 for node in ps.programs}
    max_started = 0
    for ev in interleave(ps):
        if isinstance(ev, MemoryAccess):
            max_started = max(max_started, phase[ev.node])
            # a node cannot still be in an earlier phase than one that
            # has completed globally
            assert phase[ev.node] >= max_started - 1
        else:  # SyncBoundary (barrier arrival)
            phase[ev.node] += 1
