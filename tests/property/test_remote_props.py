"""Property-based tests for the remote wire protocol and lease ledger.

Two surfaces:

* **Framing** — `encode_frame`/`read_frame` must round-trip arbitrary
  picklable payloads (single frames and back-to-back streams), and
  reject corrupt magic, truncated headers/payloads, and version skew
  with `ProtocolError` rather than garbage.
* **Lease state machine** — a model-based `RuleBasedStateMachine`
  drives a `LeaseTable` (injectable clock) through arbitrary
  interleavings of lease / heartbeat / complete / fail / release and
  clock advances, checking mutual exclusion (a key is never leased to
  two owners), exactly-once completion (done keys are never granted
  again), and expiry reassignment (a lease whose owner stops
  heartbeating past the ttl becomes grantable again).
"""

import io

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.runner.remote import (
    DONE,
    FAILED,
    LEASED,
    MAGIC,
    PENDING,
    LeaseTable,
    ProtocolError,
    encode_frame,
    read_frame,
)

# -- framing -----------------------------------------------------------

# arbitrary picklable payloads; NaN is excluded (x != x breaks the
# equality check, not the codec) and None is excluded at the *top*
# level only, because read_frame reserves None for clean EOF
_scalar = (
    st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.floats(allow_nan=False)
    | st.binary(max_size=64)
    | st.text(max_size=32)
)
_payloads = st.recursive(
    st.none() | _scalar,
    lambda children: (
        st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4)
        | st.tuples(children, children)
    ),
    max_leaves=12,
)
_messages = _scalar | st.dictionaries(
    st.text(max_size=8), _payloads, max_size=4
)


@given(_messages)
@settings(max_examples=200)
def test_frame_round_trip(payload):
    assert read_frame(io.BytesIO(encode_frame(payload))) == payload


@given(st.lists(_messages, min_size=1, max_size=6))
@settings(max_examples=100)
def test_frame_stream_decodes_in_order(payloads):
    stream = io.BytesIO(b"".join(encode_frame(p) for p in payloads))
    decoded = []
    while True:
        message = read_frame(stream)
        if message is None:
            break
        decoded.append(message)
    assert decoded == payloads


def test_empty_stream_is_clean_eof():
    assert read_frame(io.BytesIO(b"")) is None


@given(st.binary(min_size=9, max_size=64))
def test_bad_magic_raises(data):
    assume(data[:4] != MAGIC)
    try:
        read_frame(io.BytesIO(data))
    except ProtocolError:
        pass
    else:  # pragma: no cover - hypothesis will shrink a counterexample
        raise AssertionError("bad magic accepted")


@given(_messages, st.integers(min_value=1, max_value=8))
@settings(max_examples=100)
def test_truncated_frame_raises(payload, chop):
    frame = encode_frame(payload)
    truncated = frame[: max(1, len(frame) - chop)]
    assume(len(truncated) < len(frame))
    try:
        read_frame(io.BytesIO(truncated))
    except ProtocolError:
        pass
    else:
        raise AssertionError("truncated frame accepted")


def test_version_skew_raises():
    frame = bytearray(encode_frame({"type": "hello"}))
    frame[4] = 99  # the version byte
    try:
        read_frame(io.BytesIO(bytes(frame)))
    except ProtocolError as exc:
        assert "version" in str(exc)
    else:
        raise AssertionError("version skew accepted")


# -- lease state machine -----------------------------------------------

KEYS = ("k1", "k2", "k3", "k4")
OWNERS = ("w1", "w2")
TTL = 10.0
MAX_ATTEMPTS = 2


class LeaseMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.now = 1_000.0
        self.table = LeaseTable(
            KEYS,
            ttl=TTL,
            clock=lambda: self.now,
            max_attempts=MAX_ATTEMPTS,
        )
        #: reference model: key -> (state, owner, expires, attempts)
        self.model = {
            key: (PENDING, None, 0.0, 0) for key in KEYS
        }

    # -- model helpers -------------------------------------------------

    def _grantable(self):
        """Keys a lease() call may hand out, in original key order:
        pending ones plus leased ones whose lease has expired."""
        out = []
        for key in KEYS:
            state, owner, expires, attempts = self.model[key]
            if state == PENDING:
                out.append(key)
            elif state == LEASED and expires < self.now:
                out.append(key)
        return out

    # -- rules ---------------------------------------------------------

    @rule(
        owner=st.sampled_from(OWNERS),
        max_n=st.integers(min_value=1, max_value=4),
    )
    def lease(self, owner, max_n):
        expected = self._grantable()[:max_n]
        granted = self.table.lease(owner, max_n)
        assert granted == expected, (
            f"lease({owner},{max_n}) -> {granted}, expected {expected}"
        )
        # reclaimed-but-not-regranted keys fall back to pending
        for key in KEYS:
            state, _, expires, attempts = self.model[key]
            if state == LEASED and expires < self.now:
                self.model[key] = (PENDING, None, 0.0, attempts)
        for key in granted:
            attempts = self.model[key][3]
            self.model[key] = (
                LEASED, owner, self.now + TTL, attempts
            )

    @rule(owner=st.sampled_from(OWNERS))
    def heartbeat_all(self, owner):
        keys = list(KEYS)
        refreshed = self.table.heartbeat(owner, keys)
        expected = 0
        for key in keys:
            state, key_owner, _, attempts = self.model[key]
            if state == LEASED and key_owner == owner:
                self.model[key] = (
                    LEASED, owner, self.now + TTL, attempts
                )
                expected += 1
        assert refreshed == expected

    @rule(key=st.sampled_from(KEYS))
    def complete(self, key):
        first = self.table.complete(key)
        state, owner, expires, attempts = self.model[key]
        # exactly-once publication: only the first completion counts
        assert first == (state != DONE)
        self.model[key] = (DONE, None, 0.0, attempts)

    @rule(
        key=st.sampled_from(KEYS), owner=st.sampled_from(OWNERS)
    )
    def fail(self, key, owner):
        final = self.table.fail(key, owner, "boom")
        state, key_owner, expires, attempts = self.model[key]
        if (
            state != LEASED
            or key_owner != owner
            or expires < self.now
        ):
            # no *live* owner-matched lease: the error is stale
            # (expired, reassigned, or never held) and must not burn
            # the spec's attempt budget — the PR-8 fail() bugfix
            assert not final
            return
        attempts += 1
        if attempts >= MAX_ATTEMPTS:
            assert final
            self.model[key] = (FAILED, None, 0.0, attempts)
        else:
            assert not final
            self.model[key] = (PENDING, None, 0.0, attempts)

    @rule()
    def expire(self):
        reclaimed = self.table.expire()
        expected = []
        for key in KEYS:
            state, key_owner, expires, attempts = self.model[key]
            if state == LEASED and expires < self.now:
                self.model[key] = (PENDING, None, 0.0, attempts)
                expected.append(key)
        assert sorted(reclaimed) == sorted(expected)

    @rule(owner=st.sampled_from(OWNERS))
    def release(self, owner):
        returned = self.table.release(owner)
        expected = []
        for key in KEYS:
            state, key_owner, _, attempts = self.model[key]
            if state == LEASED and key_owner == owner:
                self.model[key] = (PENDING, None, 0.0, attempts)
                expected.append(key)
        assert sorted(returned) == sorted(expected)

    @rule(dt=st.floats(min_value=0.0, max_value=1.5 * TTL))
    def advance_clock(self, dt):
        # crossing the ttl is the worker-crash transition: an owner
        # that stops heartbeating silently loses its leases
        self.now += dt

    # -- invariants ----------------------------------------------------

    @invariant()
    def states_match_model(self):
        states = self.table.states()
        for key in KEYS:
            assert states[key] == self.model[key][0], (
                f"{key}: table {states[key]} != model {self.model[key]}"
            )

    @invariant()
    def done_is_terminal_and_never_leased(self):
        for key in KEYS:
            if self.model[key][0] == DONE:
                assert self.table.owner_of(key) is None

    @invariant()
    def terminal_keys_hold_no_lease_entry(self):
        # the FAILED-resurrection pin: fail() pops the lease entry
        # *before* marking FAILED, so a later expire() sweep can
        # never flip a terminal key back to PENDING
        for key in KEYS:
            if self.model[key][0] in (DONE, FAILED):
                assert self.table.owner_of(key) is None
                assert self.table.states()[key] == self.model[key][0]

    @invariant()
    def at_most_one_owner_per_key(self):
        for key in KEYS:
            state, owner, _, _ = self.model[key]
            table_owner = self.table.owner_of(key)
            if state == LEASED:
                assert table_owner == owner
            else:
                assert table_owner is None

    @invariant()
    def done_always_reachable(self):
        # no key can get stuck: everything is pending, leased (and
        # thus expirable), or terminal
        counts = self.table.counts()
        assert sum(counts.values()) == len(KEYS)


TestLeaseMachine = LeaseMachine.TestCase
TestLeaseMachine.settings = settings(
    max_examples=60,
    stateful_step_count=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    splits=st.lists(
        st.integers(min_value=1, max_value=3), min_size=2, max_size=2
    ),
    advance=st.floats(min_value=0.0, max_value=3 * TTL),
)
@settings(max_examples=60, deadline=None)
def test_expiry_reassigns_exactly_the_unheartbeaten(splits, advance):
    """After w1 and w2 lease disjoint batches and only w2 heartbeats
    at `advance` seconds, exactly w1's keys are re-grantable iff the
    clock passed the ttl."""
    now = [1_000.0]
    table = LeaseTable(KEYS, ttl=TTL, clock=lambda: now[0])
    w1_keys = table.lease("w1", splits[0])
    w2_keys = table.lease("w2", splits[1])
    assert not set(w1_keys) & set(w2_keys)
    now[0] += advance
    assert table.heartbeat("w2", w2_keys) == len(w2_keys)
    regrant = table.lease("w3", len(KEYS))
    if advance > TTL:
        # w1 went silent past the ttl: its keys (plus never-leased
        # leftovers) move to w3; w2's freshly heartbeaten ones do not
        assert set(w1_keys) <= set(regrant)
        assert table.reclaimed == len(w1_keys)
    else:
        assert not set(w1_keys) & set(regrant)
    assert not set(w2_keys) & set(regrant)


# -- lease-table regressions (PR 8) ------------------------------------


def test_stale_worker_error_burns_no_attempt_budget():
    """Regression: ``fail()`` counted an attempt (and could
    permanently FAIL the spec) when the reporting worker's lease had
    already *expired* — a dead-then-resurrected worker's stale error
    poisoned work another worker was about to run."""
    now = [1_000.0]
    table = LeaseTable(
        KEYS, ttl=TTL, clock=lambda: now[0], max_attempts=1
    )
    (key,) = table.lease("w1", 1)
    now[0] += TTL + 1.0  # w1 went silent past the ttl
    # the resurrected w1 reports an error on its long-dead lease:
    # with max_attempts=1 the old code FAILED the key permanently
    assert table.fail(key, "w1", "stale boom") is False
    assert table.states()[key] == LEASED  # left for expire()
    # the key is still grantable with its budget intact
    assert key in table.lease("w2", len(KEYS))
    assert table.owner_of(key) == "w2"


def test_reassigned_key_ignores_previous_owners_error():
    now = [1_000.0]
    table = LeaseTable(
        KEYS, ttl=TTL, clock=lambda: now[0], max_attempts=1
    )
    (key,) = table.lease("w1", 1)
    now[0] += TTL + 1.0
    assert key in table.lease("w2", len(KEYS))  # reassigned
    assert table.fail(key, "w1", "stale boom") is False
    assert table.owner_of(key) == "w2"


def test_failed_key_is_never_resurrected_by_expire():
    """A key FAILED via ``fail()`` holds no lease entry, so a later
    ``expire()`` sweep can never flip it back to PENDING."""
    now = [1_000.0]
    table = LeaseTable(
        ("k1",), ttl=TTL, clock=lambda: now[0], max_attempts=1
    )
    (key,) = table.lease("w1", 1)
    assert table.fail(key, "w1", "boom") is True  # live lease: final
    assert table.states()[key] == FAILED
    assert table.owner_of(key) is None
    now[0] += 2 * TTL
    assert table.expire() == []
    assert table.states()[key] == FAILED
    assert table.lease("w2", 1) == []


def test_lease_internal_expiry_is_visible_via_drain_reclaimed():
    """Regression: ``lease()`` expires internally, and keys it
    reclaimed were missing from the broker's ``reclaimed`` list — the
    advisory mirror claims for those keys leaked as stale claim
    files. ``drain_reclaimed()`` now reports every reclaim."""
    now = [1_000.0]
    table = LeaseTable(KEYS, ttl=TTL, clock=lambda: now[0])
    w1_keys = table.lease("w1", 2)
    now[0] += TTL + 1.0
    granted = table.lease("w2", len(KEYS))
    assert set(w1_keys) <= set(granted)
    # the internal expire()'s reclaims are buffered, not lost
    assert table.drain_reclaimed() == sorted(w1_keys)
    assert table.drain_reclaimed() == []  # read-once


# -- fair-share scheduling ---------------------------------------------


def test_priority_weights_the_rotation():
    now = [1_000.0]
    table = LeaseTable((), ttl=TTL, clock=lambda: now[0])
    table.extend(["a1", "a2", "a3", "a4"], group="a", priority=2)
    table.extend(["b1", "b2", "b3", "b4"], group="b", priority=1)
    # weighted round-robin: two 'a' grants per 'b' grant
    assert table.lease("w", 6) == ["a1", "a2", "b1", "a3", "a4", "b2"]


@given(
    n=st.integers(min_value=1, max_value=12),
    batches=st.lists(
        st.integers(min_value=1, max_value=4), min_size=1, max_size=12
    ),
)
@settings(max_examples=60, deadline=None)
def test_single_group_lease_order_is_insertion_order(n, batches):
    """Byte-identity guard: with one group (every per-grid broker,
    and any serve broker with a single live grid) the fair-share
    scheduler degenerates to pure insertion order."""
    keys = [f"k{i}" for i in range(n)]
    table = LeaseTable(keys, ttl=TTL, clock=lambda: 1_000.0)
    granted = []
    for i, batch in enumerate(batches):
        granted.extend(table.lease(f"w{i}", batch))
    assert granted == keys[: len(granted)]


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=10),
        min_size=2,
        max_size=4,
    ),
    priorities=st.lists(
        st.integers(min_value=1, max_value=3),
        min_size=4,
        max_size=4,
    ),
    batch=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=80, deadline=None)
def test_no_group_is_starved(sizes, priorities, batch):
    """The fairness bound: while a group has pending keys, it never
    waits through more than ``sum(other groups' priorities)``
    consecutive grants to other groups before receiving one."""
    now = [1_000.0]
    table = LeaseTable((), ttl=TTL, clock=lambda: now[0])
    groups = {}
    for g, size in enumerate(sizes):
        name = f"g{g}"
        groups[name] = priorities[g % len(priorities)]
        table.extend(
            [f"{name}k{i}" for i in range(size)],
            group=name,
            priority=groups[name],
        )
    pending = {
        name: sizes[g] for g, name in enumerate(groups)
    }
    waited = {name: 0 for name in groups}
    while sum(pending.values()):
        granted = table.lease("w", batch)
        assert granted, "pending keys but nothing granted"
        for key in granted:
            name = key.split("k")[0]
            pending[name] -= 1
            waited[name] = 0
            for other in groups:
                if other != name and pending[other] > 0:
                    waited[other] += 1
                    bound = sum(
                        p for o, p in groups.items() if o != other
                    )
                    assert waited[other] <= bound, (
                        f"{other} starved: waited {waited[other]} "
                        f"grants (bound {bound})"
                    )
            table.complete(key)  # retire it; scheduling is the test
