"""Property-based tests of coherence-protocol invariants.

Random access streams — optionally interleaved with random (legal)
self-invalidations — must preserve the directory/cache invariants after
every single operation, and the self-invalidation accounting identities
must hold at the end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.coherence import CoherenceEngine
from repro.protocol.states import CacheState, DirState

NODES = 4
BLOCKS = 6

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NODES - 1),   # node
        st.integers(min_value=0, max_value=BLOCKS - 1),  # block idx
        st.booleans(),                                   # is_write
        st.booleans(),                                   # try self-inval
    ),
    min_size=1,
    max_size=120,
)


def _check_consistency(engine: CoherenceEngine) -> None:
    engine.directory.check_all_invariants()
    for block in engine.directory.known_blocks():
        ent = engine.directory.entry(block)
        holders = {
            node
            for node in range(NODES)
            if engine.caches.lookup(node, block) is not None
        }
        if ent.state is DirState.IDLE:
            assert not holders
        elif ent.state is DirState.SHARED:
            assert holders == ent.sharers
            for node in holders:
                assert engine.caches.lookup(node, block) is \
                    CacheState.SHARED
        else:
            assert holders == {ent.owner}
            assert engine.caches.lookup(ent.owner, block) is \
                CacheState.EXCLUSIVE


@given(accesses)
@settings(max_examples=120, deadline=None)
def test_invariants_hold_under_random_streams(stream):
    engine = CoherenceEngine(NODES)
    for node, block_idx, is_write, do_si in stream:
        address = 0x1000 + 32 * block_idx
        engine.access(node, 0x10 + node, address, is_write)
        block = engine.block_of(address)
        if do_si and engine.holds(node, block):
            engine.self_invalidate(node, block)
        _check_consistency(engine)


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_accounting_identities(stream):
    """predicted(verified) + premature + unresolved == self-invalidations
    fired, and every external invalidation removed a real copy."""
    engine = CoherenceEngine(NODES)
    verified = premature = 0
    for node, block_idx, is_write, do_si in stream:
        address = 0x1000 + 32 * block_idx
        res = engine.access(node, 0x10 + node, address, is_write)
        verified += len(res.verified_correct)
        premature += 1 if res.premature else 0
        block = engine.block_of(address)
        if do_si and engine.holds(node, block):
            engine.self_invalidate(node, block)
    unresolved = engine.unresolved_self_invalidations()
    assert verified + premature + unresolved == engine.self_invalidations


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_exclusive_writer_unique(stream):
    """At any point at most one node holds a writable copy of a block."""
    engine = CoherenceEngine(NODES)
    for node, block_idx, is_write, _ in stream:
        engine.access(node, 0x10, 0x1000 + 32 * block_idx, is_write)
        for block in engine.directory.known_blocks():
            writers = [
                n
                for n in range(NODES)
                if engine.caches.lookup(n, block) is CacheState.EXCLUSIVE
            ]
            assert len(writers) <= 1


@given(accesses)
@settings(max_examples=80, deadline=None)
def test_hits_never_generate_invalidations(stream):
    engine = CoherenceEngine(NODES)
    for node, block_idx, is_write, _ in stream:
        res = engine.access(node, 0x10, 0x1000 + 32 * block_idx, is_write)
        if res.hit:
            assert not res.invalidations
            assert res.miss_kind is None
