"""Property-based checks of the campaign driver's contract.

Random small spaces, seeds, budgets, and deterministic fake
interestingness functions drive :class:`CampaignDriver` end to end
(no simulator — the executor is a pure function of the point). The
contract:

* the driver never explores more points than its spec budget;
* identical seed + state file => identical explored-point sequence
  across a resume, wherever the first run was cut off;
* refinement only ever proposes points inside the declared
  :class:`ParameterSpace` (every explored point is a valid member).
"""

import json
import shutil
import tempfile
import zlib
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignDriver,
    InterestingnessMetric,
    ParameterSpace,
    point_key,
)

#: deterministic "accuracy" per point — crc32 keeps it stable across
#: processes and hypothesis replays (hash() is salted per process)
def _fake_accuracy(point):
    return (zlib.crc32(point_key(point).encode()) % 100) / 100.0


def _fake_executor(point):
    return {
        "digest": point_key(point),
        "metrics": {"accuracy": _fake_accuracy(point)},
    }


def _metric():
    return InterestingnessMetric.parse(["accuracy < 0.5"])


#: small random spaces: 2-3 dimensions, 1-4 values each, no
#: constraint (validity pruning is exercised by the default space in
#: the unit tests; the properties here are about the driver)
_dimension_values = st.lists(
    st.integers(min_value=0, max_value=9),
    min_size=1, max_size=4, unique=True,
).map(tuple)

_spaces = st.lists(
    _dimension_values, min_size=2, max_size=3
).map(
    lambda dims: ParameterSpace(
        dimensions=tuple(
            (f"d{i}", values) for i, values in enumerate(dims)
        ),
        constraint=None,
    )
)


class TestBudget:
    @given(
        space=_spaces,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        budget=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_budget(self, space, seed, budget):
        driver = CampaignDriver(
            "prop", space, _metric(), seed=seed, budget=budget
        )
        result = driver.run(_fake_executor)
        assert result.spent <= budget
        assert result.executed <= budget
        if result.stop_reason == "budget":
            assert result.spent == budget
        else:
            # the whole space fits inside the budget
            assert result.spent <= len(space.points())


class TestDeterministicResume:
    @given(
        space=_spaces,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        budget=st.integers(min_value=2, max_value=20),
        cut=st.integers(min_value=1, max_value=19),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_identical_sequence_across_resume(
        self, space, seed, budget, cut
    ):
        tmp = tempfile.mkdtemp(prefix="campaign-props-")
        try:
            state = Path(tmp) / "state.json"
            # the uninterrupted campaign: the reference sequence
            reference = CampaignDriver(
                "prop", space, _metric(), seed=seed, budget=budget
            ).run(_fake_executor)
            # the same campaign cut off after `cut` points (a small
            # first budget models a mid-campaign kill: the state file
            # holds a prefix), then resumed to the full budget
            first_budget = min(cut, budget)
            CampaignDriver(
                "prop", space, _metric(), seed=seed,
                budget=first_budget, state_path=state,
            ).run(_fake_executor)
            resumed = CampaignDriver.from_state(
                state, budget=budget
            ).run(_fake_executor)
            assert (
                [o["point"] for o in resumed.explored]
                == [o["point"] for o in reference.explored]
            )
            assert (
                [o["interesting"] for o in resumed.explored]
                == [o["interesting"] for o in reference.explored]
            )
            # and the resumed run replayed, not re-executed, the
            # prefix the first run already paid for
            assert resumed.executed == max(
                0, reference.spent - first_budget
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    @given(
        space=_spaces,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        budget=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_completed_campaign_resumes_as_noop(
        self, space, seed, budget
    ):
        tmp = tempfile.mkdtemp(prefix="campaign-props-")
        try:
            state = Path(tmp) / "state.json"
            first = CampaignDriver(
                "prop", space, _metric(), seed=seed,
                budget=budget, state_path=state,
            ).run(_fake_executor)
            before = state.read_bytes()
            again = CampaignDriver.from_state(state).run(
                _fake_executor
            )
            assert again.executed == 0
            assert state.read_bytes() == before
            assert (
                [o["point"] for o in again.explored]
                == [o["point"] for o in first.explored]
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)


class TestInSpace:
    @given(
        space=_spaces,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        budget=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_explored_point_is_in_space(
        self, space, seed, budget
    ):
        driver = CampaignDriver(
            "prop", space, _metric(), seed=seed, budget=budget
        )
        result = driver.run(_fake_executor)
        for outcome in result.explored:
            assert space.contains(outcome["point"])
        # no point explored twice
        keys = [point_key(o["point"]) for o in result.explored]
        assert len(keys) == len(set(keys))

    @given(space=_spaces, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_neighbors_are_valid_one_dim_moves(self, space, seed):
        points = space.points()
        point = points[seed % len(points)]
        for neighbor in space.neighbors(point):
            assert space.contains(neighbor)
            differing = [
                name for name in space.names
                if neighbor[name] != point[name]
            ]
            assert len(differing) == 1


class TestStateFile:
    @given(
        space=_spaces,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_state_round_trips_and_checks_identity(
        self, space, seed
    ):
        tmp = tempfile.mkdtemp(prefix="campaign-props-")
        try:
            state = Path(tmp) / "state.json"
            CampaignDriver(
                "prop", space, _metric(), seed=seed, budget=3,
                state_path=state,
            ).run(_fake_executor)
            data = json.loads(state.read_text())
            assert data["seed"] == seed
            assert data["metric"] == ["accuracy < 0.5"]
            # a driver with a different seed must refuse the file
            from repro.campaign import CampaignError
            import pytest

            with pytest.raises(CampaignError, match="seed"):
                CampaignDriver(
                    "prop", space, _metric(), seed=seed + 1,
                    budget=3, state_path=state,
                ).run(_fake_executor)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
