"""Property-based equivalence of the two timing-engine cores.

Hypothesis drives random (legal) small ProgramSets — plain accesses,
barriers, and contended locks — through the reference and the
optimized core under randomly drawn protocol variants, forwarding,
and ``si_fire_delay`` settings, and asserts the resulting
``TimingReport``s pickle byte-identically. The parametrized
conformance suite proves the paper grid; this proves the long tail of
interleavings nobody thought to enumerate.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.states import ProtocolVariant
from repro.runner.spec import PolicySpec
from repro.timing import SystemConfig, TimingSimulator
from repro.timing.engine_fast import FastTimingSimulator
from repro.trace.program import (
    Access,
    Barrier,
    LockAcquire,
    LockRelease,
    Program,
    ProgramSet,
)


@st.composite
def mixed_programs(draw):
    """Random ProgramSets mixing accesses, barriers, and a lock every
    node contends on (acquire/release stay node-local and paired, so
    ``validate()`` always passes)."""
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    num_phases = draw(st.integers(min_value=1, max_value=3))
    progs = {}
    for node in range(num_nodes):
        p = Program(node)
        for phase in range(num_phases):
            if draw(st.booleans()):
                # a critical section on the shared lock: real memory
                # traffic on the flag block plus a protected write
                p.append(
                    LockAcquire(
                        lock_id=1,
                        address=0x2000,
                        pc=0x500,
                        spin_pc=0x504,
                        fixed_spins=draw(
                            st.one_of(
                                st.none(),
                                st.integers(min_value=0, max_value=3),
                            )
                        ),
                    )
                )
                p.append(Access(0x510, 0x2100, True))
                p.append(LockRelease(lock_id=1, address=0x2000, pc=0x508))
            for _ in range(draw(st.integers(min_value=0, max_value=5))):
                blk = draw(st.integers(min_value=0, max_value=5))
                p.append(
                    Access(
                        0x40 + 4 * node,
                        0x1000 + 32 * blk,
                        draw(st.booleans()),
                        work=draw(st.integers(min_value=0, max_value=60)),
                    )
                )
            p.append(Barrier(phase))
        progs[node] = p
    return ProgramSet("random-mixed", num_nodes, progs)


ENGINE_KNOBS = st.fixed_dictionaries(
    {
        "variant": st.sampled_from(list(ProtocolVariant)),
        "forwarding": st.booleans(),
        "si_fire_delay": st.sampled_from([0, 1, 40, 150, 700]),
    }
)

POLICIES = st.sampled_from(("base", "dsi", "last-pc", "ltp", "hybrid"))


@given(mixed_programs(), ENGINE_KNOBS, POLICIES)
@settings(max_examples=60, deadline=None)
def test_cores_byte_identical(ps, knobs, policy):
    spec = PolicySpec(name=policy)
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    reports = [
        pickle.dumps(core(spec.build, cfg, **knobs).run(ps))
        for core in (TimingSimulator, FastTimingSimulator)
    ]
    assert reports[0] == reports[1]


@given(mixed_programs(), st.sampled_from([0, 90, 400]))
@settings(max_examples=30, deadline=None)
def test_fast_core_accounting_identities(ps, delay):
    """The optimized core independently satisfies the SI accounting
    identity (not just equality with the reference)."""
    spec = PolicySpec(name="ltp")
    rep = FastTimingSimulator(
        spec.build,
        SystemConfig(num_nodes=ps.num_nodes),
        si_fire_delay=delay,
    ).run(ps)
    s = rep.selfinval
    assert (
        s.timely_correct + s.late_correct + s.premature + s.unresolved
        == s.fired
    )
    expected = sum(
        1
        for p in ps.programs.values()
        for step in p.steps
        if isinstance(step, Access)
    )
    # lock traffic adds accesses beyond the explicit Access steps
    assert rep.accesses >= expected
    assert rep.hits + rep.coherence_misses == rep.accesses
