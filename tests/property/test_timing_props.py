"""Property-based tests for the timing simulator.

Random (legal) program sets must complete without deadlock, produce
execution times bounded below by each node's serial work, and keep the
self-invalidation accounting identities regardless of policy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NullPolicy, PerBlockLTP
from repro.core.confidence import ConfidenceConfig
from repro.timing import SystemConfig, TimingSimulator
from repro.trace.program import Access, Barrier, Program, ProgramSet

FAST = ConfidenceConfig(initial=3, predict_threshold=3)


@st.composite
def timing_programs(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    num_phases = draw(st.integers(min_value=1, max_value=3))
    progs = {}
    for node in range(num_nodes):
        p = Program(node)
        for phase in range(num_phases):
            k = draw(st.integers(min_value=0, max_value=5))
            for _ in range(k):
                blk = draw(st.integers(min_value=0, max_value=5))
                wr = draw(st.booleans())
                work = draw(st.integers(min_value=0, max_value=50))
                p.append(Access(0x40 + 4 * node, 0x1000 + 32 * blk,
                                wr, work=work))
            p.append(Barrier(phase))
        progs[node] = p
    return ProgramSet("random-timing", num_nodes, progs)


@given(timing_programs())
@settings(max_examples=40, deadline=None)
def test_completes_without_deadlock(ps):
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    rep = TimingSimulator(lambda n: NullPolicy(), cfg).run(ps)
    assert len(rep.per_node_finish) == ps.num_nodes


@given(timing_programs())
@settings(max_examples=30, deadline=None)
def test_execution_time_lower_bound(ps):
    """Execution covers at least every node's own work + issue cycles
    (communication only adds)."""
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    rep = TimingSimulator(lambda n: NullPolicy(), cfg).run(ps)
    for node, prog in ps.programs.items():
        serial = sum(
            s.work + cfg.hit_cost
            for s in prog.steps
            if isinstance(s, Access)
        )
        assert rep.per_node_finish[node] >= serial


@given(timing_programs())
@settings(max_examples=30, deadline=None)
def test_accesses_conserved(ps):
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    rep = TimingSimulator(lambda n: NullPolicy(), cfg).run(ps)
    expected = sum(
        1 for p in ps.programs.values()
        for s in p.steps if isinstance(s, Access)
    )
    assert rep.accesses == expected
    assert rep.hits + rep.coherence_misses == expected


@given(timing_programs())
@settings(max_examples=30, deadline=None)
def test_si_accounting_identity_with_ltp(ps):
    cfg = SystemConfig(num_nodes=ps.num_nodes)
    rep = TimingSimulator(
        lambda n: PerBlockLTP(confidence=FAST), cfg
    ).run(ps)
    s = rep.selfinval
    assert s.timely_correct + s.late_correct + s.premature + \
        s.unresolved == s.fired
    assert s.unresolved >= 0


@given(timing_programs())
@settings(max_examples=20, deadline=None)
def test_deterministic(ps):
    cfg = SystemConfig(num_nodes=ps.num_nodes)

    def run():
        return TimingSimulator(lambda n: NullPolicy(), cfg).run(ps)

    a, b = run(), run()
    assert a.execution_cycles == b.execution_cycles
    assert a.directory.messages == b.directory.messages
