"""Property-based tests for the claim state machine.

A model-based :class:`RuleBasedStateMachine` drives two actors (fake
hosts sharing one claims directory) through arbitrary interleavings of
``acquire`` / ``release`` / ``heartbeat`` / ``reap`` and clock
advances, checking the store against a reference model after every
step. Crash-mid-claim shows up as an actor that simply stops
heartbeating: once the clock passes the ttl its claims become
reclaimable by the peer and reapable by anyone — exactly the stale
transitions the model encodes.
"""

import os
import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.runner.claims import ClaimStore

KEYS = ("k1", "k2", "k3")
ACTORS = ("A", "B")
TTL = 10.0


class ClaimMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tmp = tempfile.mkdtemp(prefix="claims-props-")
        self.now = 1_000.0
        clock = lambda: self.now  # noqa: E731 - shared mutable clock
        # fake hosts ≠ the real host, so liveness is governed purely by
        # the heartbeat ttl (the dead-pid fast path never fires); the
        # pid is this live process so owns() still distinguishes actors
        # by host
        self.stores = {
            name: ClaimStore(
                self.tmp,
                ttl=TTL,
                owner=(f"host-{name}", os.getpid()),
                clock=clock,
            )
            for name in ACTORS
        }
        #: reference model: key -> (actor, last_heartbeat_time)
        self.model = {}

    def teardown(self):
        shutil.rmtree(self.tmp, ignore_errors=True)

    # -- model helpers -------------------------------------------------

    def _owner(self, key):
        entry = self.model.get(key)
        return entry[0] if entry else None

    def _live(self, key):
        entry = self.model.get(key)
        return entry is not None and self.now - entry[1] <= TTL

    # -- rules ---------------------------------------------------------

    @rule(actor=st.sampled_from(ACTORS), key=st.sampled_from(KEYS))
    def acquire(self, actor, key):
        got = self.stores[actor].acquire(key)
        # acquirable iff free, stale, or already ours
        expected = (
            not self._live(key) or self._owner(key) == actor
        )
        assert got == expected, (
            f"acquire({actor},{key}) -> {got}, model {self.model}"
        )
        if got:
            self.model[key] = (actor, self.now)

    @rule(actor=st.sampled_from(ACTORS), key=st.sampled_from(KEYS))
    def release(self, actor, key):
        got = self.stores[actor].release(key)
        # releasable iff ours — even when stale: until someone reaps
        # or takes over, the claim file still records us as owner
        expected = self._owner(key) == actor
        assert got == expected
        if got:
            del self.model[key]

    @rule(actor=st.sampled_from(ACTORS), key=st.sampled_from(KEYS))
    def heartbeat(self, actor, key):
        refreshed = self.stores[actor].heartbeat([key])
        expected = 1 if self._owner(key) == actor else 0
        assert refreshed == expected
        if refreshed:
            self.model[key] = (actor, self.now)

    @rule(actor=st.sampled_from(ACTORS), key=st.sampled_from(KEYS))
    def reap_one(self, actor, key):
        reaped = self.stores[actor].reap([key])
        if self.model.get(key) is not None and not self._live(key):
            assert reaped == [key]
            del self.model[key]
        else:
            assert reaped == []

    @rule(actor=st.sampled_from(ACTORS))
    def reap_all(self, actor):
        reaped = self.stores[actor].reap()
        expected = sorted(
            key for key in self.model if not self._live(key)
        )
        assert sorted(reaped) == expected
        for key in reaped:
            del self.model[key]

    @rule(dt=st.floats(min_value=0.0, max_value=1.5 * TTL))
    def advance_clock(self, dt):
        # crossing the ttl here is the crash-mid-claim transition: an
        # owner that stops heartbeating silently goes stale
        self.now += dt

    # -- invariants ----------------------------------------------------

    @invariant()
    def disk_matches_model(self):
        store = self.stores["A"]
        on_disk = {info.key: info for info in store.claims()}
        assert set(on_disk) == set(self.model), (
            f"claim files {set(on_disk)} != model {set(self.model)}"
        )
        for key, info in on_disk.items():
            actor, hb = self.model[key]
            assert info.host == f"host-{actor}"
            assert info.heartbeat == hb

    @invariant()
    def liveness_agrees(self):
        store = self.stores["A"]
        for key in KEYS:
            assert store.is_live(store.read(key)) == self._live(key)

    @invariant()
    def at_most_one_owner_per_key(self):
        # trivially true on a filesystem (one file per key), but keeps
        # the mutual-exclusion contract explicit should the storage
        # layer ever change
        for key in KEYS:
            owners = [
                a for a in ACTORS
                if self.stores[a].owns(self.stores[a].read(key))
            ]
            assert len(owners) <= 1


TestClaimMachine = ClaimMachine.TestCase
TestClaimMachine.settings = settings(
    max_examples=40,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    order=st.permutations(list(range(6))),
    keys=st.lists(
        st.sampled_from(KEYS), min_size=6, max_size=6
    ),
)
@settings(max_examples=50, deadline=None)
def test_acquire_is_exclusive_per_round(order, keys):
    """However acquire attempts from two actors interleave, each key
    has at most one owner and every attempted key ends up owned."""
    tmp = tempfile.mkdtemp(prefix="claims-excl-")
    try:
        stores = [
            ClaimStore(tmp, ttl=60.0, owner=(f"h{i}", os.getpid()))
            for i in range(2)
        ]
        granted = {}
        # 6 attempts: attempt i comes from actor i % 2 on keys[i],
        # executed in the generated order
        for i in order:
            actor = i % 2
            key = keys[i]
            if stores[actor].acquire(key):
                granted.setdefault(key, []).append(actor)
        for key in set(keys):
            owners = granted.get(key, [])
            assert len(owners) >= 1
            # every later grant of the same key must be a re-acquire by
            # the same actor, never a steal of a live claim
            assert len(set(owners)) == 1
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
