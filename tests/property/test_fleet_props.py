"""Property-based model check of the scaling-policy contract.

Random sequences of observed queue depths, throughputs, and clock
advances drive a policy through ``decide()`` with the fleet faithfully
following every decision (``live`` = the previous answer — what a
controller whose supervisor always succeeds would see). The contract:

* the decision never leaves ``[min_workers, max_workers]``;
* two fleet-size *changes* are never closer than ``cooldown`` seconds;
* once the queue stays empty and the cooldown has passed, the fleet
  converges to ``min_workers`` and stays there.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import QueueDepthPolicy, ThroughputPolicy, FleetSignals


class SteppedClock:
    def __init__(self, now=1_000.0):
        self.now = now

    def __call__(self):
        return self.now


#: one observation: (queue_depth, throughput jobs/min, dt seconds)
observations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),
        st.floats(
            min_value=0.0, max_value=1e4,
            allow_nan=False, allow_infinity=False,
        ),
        st.floats(
            min_value=0.0, max_value=30.0,
            allow_nan=False, allow_infinity=False,
        ),
    ),
    min_size=1,
    max_size=60,
)

policy_configs = st.tuples(
    st.sampled_from(["queue", "throughput"]),
    st.integers(min_value=0, max_value=3),    # min_workers
    st.integers(min_value=1, max_value=16),   # max extra over min
    st.floats(min_value=0.0, max_value=20.0,  # cooldown
              allow_nan=False, allow_infinity=False),
    st.integers(min_value=1, max_value=8),    # specs_per_worker
)


def _build(config, clock):
    kind, min_w, extra, cooldown, chunk = config
    bounds = dict(
        min_workers=min_w,
        max_workers=max(1, min_w) + extra,
        cooldown=cooldown,
        clock=clock,
    )
    if kind == "queue":
        return QueueDepthPolicy(specs_per_worker=chunk, **bounds)
    return ThroughputPolicy(
        drain_target=30.0 * chunk, assumed_rate=6.0, **bounds
    )


@settings(max_examples=200, deadline=None)
@given(config=policy_configs, steps=observations)
def test_policy_contract(config, steps):
    clock = SteppedClock()
    policy = _build(config, clock)
    live = policy.min_workers
    last_change_at = None
    for queue_depth, throughput, dt in steps:
        clock.now += dt
        decided = policy.decide(FleetSignals(
            queue_depth=queue_depth,
            live_workers=live,
            throughput=throughput,
        ))
        # bounds hold on every single decision
        assert policy.min_workers <= decided <= policy.max_workers
        if decided != live:
            # changes respect the cooldown between one another
            if last_change_at is not None:
                assert (
                    clock.now - last_change_at >= policy.cooldown
                ), (
                    f"change at {clock.now} only "
                    f"{clock.now - last_change_at}s after the last "
                    f"(cooldown {policy.cooldown})"
                )
            last_change_at = clock.now
        live = decided


@settings(max_examples=200, deadline=None)
@given(config=policy_configs, steps=observations)
def test_policy_converges_to_min_on_empty_queue(config, steps):
    """After any history, an empty queue drains the fleet to
    min_workers within one post-cooldown decision, and it stays
    there."""
    clock = SteppedClock()
    policy = _build(config, clock)
    live = policy.min_workers
    for queue_depth, throughput, dt in steps:
        clock.now += dt
        live = policy.decide(FleetSignals(
            queue_depth=queue_depth,
            live_workers=live,
            throughput=throughput,
        ))
    # the queue empties for good; step past any cooldown remnant
    clock.now += policy.cooldown + 1.0
    live = policy.decide(FleetSignals(
        queue_depth=0, live_workers=live, throughput=0.0
    ))
    assert live == policy.min_workers
    for _ in range(3):
        clock.now += 1.0
        live = policy.decide(FleetSignals(
            queue_depth=0, live_workers=live, throughput=0.0
        ))
        assert live == policy.min_workers


@settings(max_examples=100, deadline=None)
@given(
    config=policy_configs,
    depth=st.integers(min_value=1, max_value=10_000),
)
def test_policy_never_exceeds_max_on_any_backlog(config, depth):
    clock = SteppedClock()
    policy = _build(config, clock)
    decided = policy.decide(FleetSignals(
        queue_depth=depth, live_workers=0, throughput=0.0
    ))
    assert decided <= policy.max_workers
    # and the raw heuristic is what the clamp protects against
    assert policy.target(FleetSignals(
        queue_depth=depth, live_workers=0, throughput=0.0
    )) >= math.ceil(depth / max(depth, 1))  # sanity: >= 1 worker
