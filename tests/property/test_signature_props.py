"""Property-based tests for signature encoders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.signature import (
    LastPCEncoder,
    TruncatedAddEncoder,
    XorRotateEncoder,
)

pcs = st.lists(st.integers(min_value=0, max_value=2**32 - 1),
               min_size=1, max_size=30)
widths = st.integers(min_value=1, max_value=64)


@given(pcs, widths)
def test_trunc_add_within_mask(trace, bits):
    enc = TruncatedAddEncoder(bits)
    assert 0 <= enc.encode_trace(trace) <= enc.mask


@given(pcs, widths)
def test_trunc_add_equals_fold(trace, bits):
    enc = TruncatedAddEncoder(bits)
    sig = enc.init(trace[0])
    for pc in trace[1:]:
        sig = enc.update(sig, pc)
    assert enc.encode_trace(trace) == sig


@given(pcs, widths)
def test_trunc_add_is_truncated_sum(trace, bits):
    enc = TruncatedAddEncoder(bits)
    assert enc.encode_trace(trace) == sum(trace) & enc.mask


@given(pcs)
def test_trunc_add_order_insensitive(trace):
    """Truncated addition encodes the multiset of PCs: any permutation
    yields the same signature (a documented limitation: ordering
    information is only preserved through repetition counts)."""
    enc = TruncatedAddEncoder(30)
    assert enc.encode_trace(trace) == enc.encode_trace(
        list(reversed(trace))
    )


@given(pcs, widths)
def test_prefix_signature_is_running_value(trace, bits):
    """The root cause of subtrace aliasing: every prefix's signature
    appears as the running signature mid-trace."""
    enc = TruncatedAddEncoder(bits)
    running = enc.init(trace[0])
    prefix_sigs = [running]
    for pc in trace[1:]:
        running = enc.update(running, pc)
        prefix_sigs.append(running)
    for k in range(1, len(trace) + 1):
        assert enc.encode_trace(trace[:k]) == prefix_sigs[k - 1]


@given(pcs)
def test_last_pc_encoder_keeps_final(trace):
    enc = LastPCEncoder(64)
    assert enc.encode_trace(trace) == trace[-1]


@given(pcs, st.integers(min_value=2, max_value=64))
def test_xor_rotate_within_mask(trace, bits):
    enc = XorRotateEncoder(bits)
    assert 0 <= enc.encode_trace(trace) <= enc.mask


@given(st.integers(min_value=0, max_value=2**30 - 1),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=50)
def test_wider_signature_refines_narrower(pc, bits):
    """A narrow signature is always the truncation of a wider one over
    the same trace (monotone information)."""
    wide = TruncatedAddEncoder(64)
    narrow = TruncatedAddEncoder(bits)
    trace = [pc, pc * 3 + 1, pc // 2]
    assert wide.encode_trace(trace) & narrow.mask == \
        narrow.encode_trace(trace)
