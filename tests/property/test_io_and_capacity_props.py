"""Property-based tests: trace IO round-trips and LRU table capacity."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import ConfidenceConfig, CounterTable
from repro.trace.events import MemoryAccess, SyncBoundary, SyncKind
from repro.trace.io import parse_stream, save_stream

events_strategy = st.lists(
    st.one_of(
        st.builds(
            MemoryAccess,
            node=st.integers(min_value=0, max_value=31),
            pc=st.integers(min_value=0, max_value=2**32 - 1),
            address=st.integers(min_value=0, max_value=2**40 - 1),
            is_write=st.booleans(),
        ),
        st.builds(
            SyncBoundary,
            node=st.integers(min_value=0, max_value=31),
            kind=st.sampled_from(list(SyncKind)),
            sync_id=st.integers(min_value=0, max_value=10**6),
        ),
    ),
    max_size=60,
)


@given(events_strategy)
@settings(max_examples=80, deadline=None)
def test_trace_io_roundtrip(events):
    buf = io.StringIO()
    written = save_stream(events, buf, num_nodes=32)
    assert written == len(events)
    num_nodes, parsed = parse_stream(buf.getvalue())
    parsed = list(parsed)
    assert num_nodes == 32
    assert len(parsed) == len(events)
    for original, loaded in zip(events, parsed):
        assert type(original) is type(loaded)
        if isinstance(original, MemoryAccess):
            assert (loaded.node, loaded.pc, loaded.address,
                    loaded.is_write) == (
                original.node, original.pc, original.address,
                original.is_write,
            )
        else:
            assert (loaded.node, loaded.kind, loaded.sync_id) == (
                original.node, original.kind, original.sync_id,
            )


key_ops = st.lists(
    st.tuples(
        st.sampled_from(["learn", "strengthen", "weaken", "confident"]),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=80,
)


@given(key_ops, st.integers(min_value=1, max_value=4))
@settings(max_examples=80, deadline=None)
def test_capacity_never_exceeded(ops, cap):
    table = CounterTable(ConfidenceConfig(), max_entries=cap)
    for op, key in ops:
        getattr(table, op)(key)
        assert len(table) <= cap


@given(key_ops, st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_most_recent_key_survives(ops, cap):
    """LRU: the key touched last is never the one evicted next."""
    table = CounterTable(ConfidenceConfig(), max_entries=cap)
    for op, key in ops:
        getattr(table, op)(key)
        if op in ("learn", "strengthen"):
            assert key in table
