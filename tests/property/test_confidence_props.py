"""Property-based tests for confidence counters."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.confidence import ConfidenceConfig, CounterTable

ops = st.lists(
    st.sampled_from(["learn", "strengthen", "weaken"]),
    min_size=0, max_size=60,
)


@given(ops, st.booleans())
def test_counter_always_in_range(sequence, poison):
    cfg = ConfidenceConfig(poison_on_premature=poison)
    table = CounterTable(cfg)
    for op in sequence:
        getattr(table, op)("sig")
        if "sig" in table:
            assert 0 <= table.value("sig") <= cfg.max_value


@given(ops)
def test_never_confident_after_poison(sequence):
    """Once poisoned, no operation sequence restores confidence."""
    table = CounterTable(ConfidenceConfig())
    table.learn("sig")
    table.weaken("sig")  # poisons
    for op in sequence:
        getattr(table, op)("sig")
        assert not table.confident("sig")


@given(st.integers(min_value=0, max_value=3),
       st.integers(min_value=0, max_value=3))
def test_confident_iff_at_threshold(initial, threshold):
    cfg = ConfidenceConfig(initial=initial, predict_threshold=threshold)
    table = CounterTable(cfg)
    table.learn("sig")
    assert table.confident("sig") == (initial >= threshold)


@given(st.integers(min_value=1, max_value=20))
def test_enough_learns_always_saturate(n):
    cfg = ConfidenceConfig(initial=0)
    table = CounterTable(cfg)
    # one insert at 0 plus max_value increments saturates; extra learns
    # must stay saturated
    for _ in range(cfg.max_value + n):
        table.learn("sig")
    assert table.value("sig") == cfg.max_value
