"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.trace.program import Access, Barrier, Program, ProgramSet

BLOCK = 32  # bytes


def addr(block_number: int, offset: int = 0) -> int:
    """Byte address inside a given block."""
    return block_number * BLOCK + offset


def producer_consumer(
    iterations: int = 10,
    num_consumers: int = 1,
    writes_per_iter: int = 1,
    block: int = 0x100,
) -> ProgramSet:
    """Node 0 writes a block each iteration; consumers read it after a
    barrier. The canonical single-touch, fully repetitive workload."""
    n = 1 + num_consumers
    progs = {i: Program(i) for i in range(n)}
    bid = 0
    for _ in range(iterations):
        for w in range(writes_per_iter):
            progs[0].append(Access(0x100 + 4 * w, addr(block), True))
        bid += 1
        for i in range(n):
            progs[i].append(Barrier(bid))
        for c in range(1, n):
            progs[c].append(Access(0x200 + 4 * c, addr(block), False))
        bid += 1
        for i in range(n):
            progs[i].append(Barrier(bid))
    return ProgramSet("producer-consumer", n, progs)


def migratory_rmw(
    iterations: int = 10, nodes: int = 3, block: int = 0x200
) -> ProgramSet:
    """Each node in turn reads then writes the block (token passing)."""
    progs = {i: Program(i) for i in range(nodes)}
    bid = 0
    for _ in range(iterations):
        for node in range(nodes):
            progs[node].append(Access(0x300, addr(block), False))
            progs[node].append(Access(0x304, addr(block), True))
            bid += 1
            for i in range(nodes):
                progs[i].append(Barrier(bid))
    return ProgramSet("migratory", nodes, progs)


@pytest.fixture
def pc_workload() -> ProgramSet:
    return producer_consumer()


@pytest.fixture
def migratory_workload() -> ProgramSet:
    return migratory_rmw()
