"""Unit tests for workload address-space and code-map helpers."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.address_space import (
    BLOCK_SIZE,
    AddressSpace,
    CodeMap,
)


class TestAddressSpace:
    def test_regions_disjoint(self):
        space = AddressSpace()
        a = space.region("a", 10)
        b = space.region("b", 5)
        a_blocks = {a.block_addr(i) // BLOCK_SIZE for i in range(10)}
        b_blocks = {b.block_addr(i) // BLOCK_SIZE for i in range(5)}
        assert not (a_blocks & b_blocks)

    def test_block_addresses_aligned(self):
        space = AddressSpace()
        r = space.region("r", 4)
        for i in range(4):
            assert r.block_addr(i) % BLOCK_SIZE == 0

    def test_element_packing(self):
        space = AddressSpace()
        r = space.region("r", 4)
        # two elements per block: elements 0,1 share block 0
        assert r.element_addr(0, 2) // BLOCK_SIZE == \
            r.element_addr(1, 2) // BLOCK_SIZE
        assert r.element_addr(2, 2) // BLOCK_SIZE != \
            r.element_addr(1, 2) // BLOCK_SIZE

    def test_block_of_matches_element_addr(self):
        space = AddressSpace()
        r = space.region("r", 4)
        for i in range(8):
            assert r.block_of(i, 2) == r.element_addr(i, 2) // BLOCK_SIZE

    def test_out_of_range_rejected(self):
        space = AddressSpace()
        r = space.region("r", 2)
        with pytest.raises(WorkloadError):
            r.block_addr(2)

    def test_duplicate_region_rejected(self):
        space = AddressSpace()
        space.region("r", 1)
        with pytest.raises(WorkloadError):
            space.region("r", 1)

    def test_block_zero_never_allocated(self):
        space = AddressSpace()
        r = space.region("r", 1)
        assert r.block_addr(0) > 0

    def test_total_blocks(self):
        space = AddressSpace()
        space.region("a", 3)
        space.region("b", 4)
        assert space.total_blocks() == 7


class TestCodeMap:
    def test_stable_within_build(self):
        code = CodeMap()
        assert code.pc("loop.load") == code.pc("loop.load")

    def test_distinct_labels_distinct_pcs(self):
        code = CodeMap()
        pcs = {code.pc(f"label{i}") for i in range(100)}
        assert len(pcs) == 100

    def test_stable_across_instances(self):
        assert CodeMap().pc("x.y") == CodeMap().pc("x.y")

    def test_word_aligned(self):
        code = CodeMap()
        for i in range(20):
            assert code.pc(f"l{i}") % 4 == 0

    def test_low_bit_entropy(self):
        """PCs must differ within 13 low bits for truncated-addition
        signatures to work below the base width (Section 5.2)."""
        code = CodeMap()
        low13 = {code.pc(f"ins{i}") & 0x1FFF for i in range(50)}
        assert len(low13) > 40

    def test_labels_export(self):
        code = CodeMap()
        code.pc("a")
        code.pc("b")
        assert set(code.labels()) == {"a", "b"}
        assert len(code) == 2
