"""Unit tests for the sharing-pattern classifier and census."""

from repro.analysis.sharing import (
    SharingPattern,
    census,
    classify_stream,
)
from repro.trace.events import MemoryAccess
from repro.trace.scheduler import interleave
from repro.workloads import get_workload


def acc(node, block, is_write):
    return MemoryAccess(node, 0x10, block * 32, is_write)


class TestClassifier:
    def test_private_block(self):
        stream = [acc(0, 1, True), acc(0, 1, False), acc(0, 1, True)]
        assert classify_stream(stream)[1] is SharingPattern.PRIVATE

    def test_read_only_block(self):
        stream = [acc(0, 1, False), acc(1, 1, False), acc(2, 1, False)]
        assert classify_stream(stream)[1] is SharingPattern.READ_ONLY

    def test_producer_consumer(self):
        stream = [
            acc(0, 1, True), acc(1, 1, False), acc(2, 1, False),
            acc(0, 1, True), acc(1, 1, False),
        ]
        assert classify_stream(stream)[1] is \
            SharingPattern.PRODUCER_CONSUMER

    def test_migratory(self):
        stream = []
        for node in (0, 1, 2, 0, 1, 2):
            stream.append(acc(node, 1, False))
            stream.append(acc(node, 1, True))
        assert classify_stream(stream)[1] is SharingPattern.MIGRATORY

    def test_wide_shared(self):
        stream = []
        for writer in (0, 1):
            stream.append(acc(writer, 1, True))
            for reader in (2, 3, 4):
                stream.append(acc(reader, 1, False))
        assert classify_stream(stream)[1] is SharingPattern.WIDE_SHARED

    def test_blocks_classified_independently(self):
        stream = [acc(0, 1, True), acc(1, 1, False), acc(0, 2, True)]
        out = classify_stream(stream)
        assert out[1] is SharingPattern.PRODUCER_CONSUMER
        assert out[2] is SharingPattern.PRIVATE


class TestCensus:
    def test_counts_and_fractions(self):
        stream = [
            acc(0, 1, True), acc(1, 1, False),   # producer-consumer
            acc(0, 2, False), acc(1, 2, False),  # read-only
        ]
        c = census(stream)
        assert c.total_blocks == 2
        assert c.fraction(SharingPattern.PRODUCER_CONSUMER) == 0.5
        assert "blocks=2" in c.summary()

    def test_empty_census(self):
        c = census([])
        assert c.total_blocks == 0
        assert c.fraction(SharingPattern.MIGRATORY) == 0.0


class TestWorkloadAudit:
    """The DESIGN.md substitution argument, checked mechanically: each
    workload's dominant sharing structure matches the paper's
    description of the original benchmark."""

    def _census(self, name):
        ps = get_workload(name, "small").build()
        return census(interleave(ps))

    def test_em3d_is_producer_consumer(self):
        c = self._census("em3d")
        assert c.fraction(SharingPattern.PRODUCER_CONSUMER) > 0.5
        assert c.fraction(SharingPattern.MIGRATORY) < 0.1

    def test_unstructured_has_migratory_mass(self):
        c = self._census("unstructured")
        migratory = (
            c.fraction(SharingPattern.MIGRATORY)
            + c.fraction(SharingPattern.WIDE_SHARED)
        )
        assert migratory > 0.3

    def test_tomcatv_boundary_is_producer_consumer(self):
        c = self._census("tomcatv")
        assert c.dominant() in (
            SharingPattern.PRODUCER_CONSUMER, SharingPattern.PRIVATE
        )

    def test_barnes_tree_is_write_shared(self):
        c = self._census("barnes")
        assert (
            c.fraction(SharingPattern.MIGRATORY)
            + c.fraction(SharingPattern.WIDE_SHARED)
        ) > 0.4
