"""Tests for the persistent ProgramSet build cache: golden event-level
equality of cache hits, invalidation on builder-version/seed/param
changes, corruption handling, and the runner integration that lets a
warm cache skip every build in a fresh process."""

import dataclasses
import pickle

from repro.runner import runner as runner_module
from repro.runner import (
    PolicySpec,
    Runner,
    accuracy_job,
    census_job,
    timing_job,
)
from repro.workloads import (
    TraceCache,
    build_program_set,
    cached_build,
    get_workload,
)

WORKLOAD = "em3d"
SIZE = "tiny"


def assert_event_identical(a, b):
    """Event-for-event structural equality of two ProgramSets (slots
    dataclasses don't define __eq__ across instances usefully for
    steps, so compare field dicts)."""
    assert a.name == b.name
    assert a.num_nodes == b.num_nodes
    assert sorted(a.programs) == sorted(b.programs)
    for node in a.programs:
        steps_a = a.programs[node].steps
        steps_b = b.programs[node].steps
        assert len(steps_a) == len(steps_b), f"node {node} length"
        for i, (sa, sb) in enumerate(zip(steps_a, steps_b)):
            assert type(sa) is type(sb), f"node {node} step {i}"
            fields = [f.name for f in dataclasses.fields(sa)]
            for name in fields:
                assert getattr(sa, name) == getattr(sb, name), (
                    f"node {node} step {i} field {name}"
                )


class TestGoldenTraces:
    def test_cache_hit_is_event_for_event_identical(self, tmp_path):
        cache = TraceCache(tmp_path)
        fresh = get_workload(WORKLOAD, SIZE).build()
        first = cached_build(get_workload(WORKLOAD, SIZE), cache)
        assert cache.builds == 1 and cache.hits == 0
        second = cached_build(get_workload(WORKLOAD, SIZE), cache)
        assert cache.builds == 1 and cache.hits == 1
        assert_event_identical(fresh, first)
        assert_event_identical(fresh, second)
        # and byte-identical once pickled (what workers actually load)
        assert pickle.dumps(fresh) == pickle.dumps(second)

    def test_every_workload_round_trips(self, tmp_path):
        # the full Table 2 set at tiny size: pickling must preserve all
        # step types every generator emits
        from repro.workloads import WORKLOAD_NAMES

        cache = TraceCache(tmp_path)
        for name in WORKLOAD_NAMES:
            fresh = get_workload(name, SIZE).build()
            cached_build(get_workload(name, SIZE), cache)
            reloaded = cached_build(get_workload(name, SIZE), cache)
            assert_event_identical(fresh, reloaded)
        assert cache.entries() == len(WORKLOAD_NAMES)


class TestInvalidation:
    def test_seed_changes_key(self, tmp_path):
        cache = TraceCache(tmp_path)
        base = get_workload(WORKLOAD, SIZE)
        reseeded = get_workload(WORKLOAD, SIZE, seed=99)
        assert cache.key(base) != cache.key(reseeded)
        cached_build(base, cache)
        hit, _ = cache.get(reseeded)
        assert not hit

    def test_builder_version_changes_key(self, tmp_path, monkeypatch):
        cache = TraceCache(tmp_path)
        workload = get_workload(WORKLOAD, SIZE)
        old_key = cache.key(workload)
        cached_build(workload, cache)
        monkeypatch.setattr(
            type(workload), "builder_version",
            type(workload).builder_version + 1,
        )
        bumped = get_workload(WORKLOAD, SIZE)
        assert cache.key(bumped) != old_key
        hit, _ = cache.get(bumped)
        assert not hit, "bumping builder_version must orphan old traces"
        rebuilt = cached_build(bumped, cache)
        assert cache.builds == 2
        assert_event_identical(rebuilt, workload.build())

    def test_size_and_param_overrides_change_key(self, tmp_path):
        cache = TraceCache(tmp_path)
        keys = {
            cache.key(get_workload(WORKLOAD, "tiny")),
            cache.key(get_workload(WORKLOAD, "small")),
            cache.key(get_workload(WORKLOAD, "tiny", num_nodes=8)),
            cache.key(get_workload(WORKLOAD, "tiny", iterations=3)),
        }
        assert len(keys) == 4

    def test_workload_name_distinguishes(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.key(get_workload("em3d", SIZE)) != cache.key(
            get_workload("tomcatv", SIZE)
        )


class TestRobustness:
    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        cache = TraceCache(tmp_path)
        workload = get_workload(WORKLOAD, SIZE)
        cached_build(workload, cache)
        cache.path(workload).write_bytes(b"not a pickle")
        rebuilt = cached_build(get_workload(WORKLOAD, SIZE), cache)
        assert cache.builds == 2 and cache.hits == 0
        assert_event_identical(rebuilt, workload.build())

    def test_wrong_type_entry_is_rebuilt(self, tmp_path):
        cache = TraceCache(tmp_path)
        workload = get_workload(WORKLOAD, SIZE)
        path = cache.path(workload)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a ProgramSet"}))
        hit, value = cache.get(workload)
        assert not hit and value is None
        assert not path.exists()

    def test_build_program_set_helper(self, tmp_path):
        cache = TraceCache(tmp_path)
        a = build_program_set(WORKLOAD, SIZE, cache=cache)
        b = build_program_set(WORKLOAD, SIZE, cache=cache)
        assert cache.hits == 1
        assert_event_identical(a, b)
        # cache=None bypasses
        c = build_program_set(WORKLOAD, SIZE)
        assert cache.hits == 1
        assert_event_identical(a, c)


class TestRunnerIntegration:
    def _grid(self):
        return [
            timing_job(WORKLOAD, SIZE, PolicySpec(name="ltp")),
            accuracy_job(WORKLOAD, SIZE, PolicySpec(name="ltp", bits=13)),
            census_job(WORKLOAD, SIZE),
            census_job("tomcatv", SIZE),
        ]

    def test_warm_trace_cache_skips_all_builds(self, tmp_path):
        grid = self._grid()
        workloads = {(s.workload, s.size, s.overrides) for s in grid}

        cold = TraceCache(tmp_path / "traces")
        runner_module._PROGRAMS.clear()
        first = Runner(trace_cache=cold).run(grid)
        assert cold.builds == len(workloads) and cold.hits == 0

        # a fresh process has an empty per-process memo; clearing it
        # simulates worker start-up on the same machine
        runner_module._PROGRAMS.clear()
        warm = TraceCache(tmp_path / "traces")
        second = Runner(trace_cache=warm).run(grid)
        assert warm.builds == 0, "warm cache must skip every build"
        assert warm.hits == len(workloads)
        for spec in grid:
            assert pickle.dumps(first[spec]) == pickle.dumps(second[spec])

        # and results equal a run with no trace cache at all
        runner_module._PROGRAMS.clear()
        plain = Runner().run(grid)
        for spec in grid:
            assert pickle.dumps(plain[spec]) == pickle.dumps(second[spec])

    def test_trace_cache_global_restored_after_run(self, tmp_path):
        runner_module._PROGRAMS.clear()
        assert runner_module._TRACE_CACHE is None
        Runner(trace_cache=TraceCache(tmp_path)).run(
            [census_job(WORKLOAD, SIZE)]
        )
        assert runner_module._TRACE_CACHE is None


class TestMmapEntryReads:
    """The read path maps raw entries instead of copying them into a
    private buffer; the degenerate files an atomic-write crash can
    leave behind must still degrade to misses."""

    def _warm(self, tmp_path, codec="none"):
        cache = TraceCache(tmp_path, codec=codec)
        cached_build(get_workload(WORKLOAD, SIZE), cache)
        return cache

    def test_raw_entry_served_from_the_mapping(
        self, tmp_path, monkeypatch
    ):
        import mmap as mmap_module

        from repro.workloads import trace_cache as tc_module

        cache = self._warm(tmp_path)
        mapped = []
        real_mmap = mmap_module.mmap

        def recording_mmap(*args, **kwargs):
            mapped.append(args)
            return real_mmap(*args, **kwargs)

        monkeypatch.setattr(tc_module.mmap, "mmap", recording_mmap)
        hit, programs = cache.get(get_workload(WORKLOAD, SIZE))
        assert hit and mapped, "raw entry must be read via mmap"
        assert_event_identical(
            programs, get_workload(WORKLOAD, SIZE).build()
        )

    def test_packed_entry_still_decodes(self, tmp_path):
        cache = self._warm(tmp_path, codec="zlib")
        # a none-configured reader decodes the zlib entry transparently
        hit, programs = TraceCache(tmp_path).get(
            get_workload(WORKLOAD, SIZE)
        )
        assert hit
        assert_event_identical(
            programs, get_workload(WORKLOAD, SIZE).build()
        )

    def test_empty_entry_degrades_to_miss(self, tmp_path):
        cache = self._warm(tmp_path)
        path = cache.path(get_workload(WORKLOAD, SIZE))
        path.write_bytes(b"")  # mmap refuses empty files
        hit, programs = cache.get(get_workload(WORKLOAD, SIZE))
        assert not hit and programs is None
        assert not path.exists(), "corrupt entry must be dropped"

    def test_unmappable_file_falls_back_to_plain_read(
        self, tmp_path, monkeypatch
    ):
        from repro.workloads import trace_cache as tc_module

        cache = self._warm(tmp_path)

        def refuse(*args, **kwargs):
            raise OSError("no mmap here")

        monkeypatch.setattr(tc_module.mmap, "mmap", refuse)
        hit, programs = cache.get(get_workload(WORKLOAD, SIZE))
        assert hit, "read() fallback must still serve the entry"
        assert_event_identical(
            programs, get_workload(WORKLOAD, SIZE).build()
        )
