"""Unit tests for the cooperative claim protocol: acquire/release
ownership rules, staleness (heartbeat ttl and dead-pid fast path),
reaping, heartbeat refresh, advisory-lock mutual exclusion, and the
peer-wait poll backoff."""

import json
import os
import socket
import subprocess
import sys
import threading

import pytest

from repro.runner.backends import CooperativeBackend
from repro.runner.claims import (
    Backoff,
    ClaimStore,
    CompletionCounter,
    FileLock,
    HeartbeatKeeper,
    completions,
    pid_alive,
)

HOST = socket.gethostname()


class FakeClock:
    def __init__(self, start: float = 1_000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def two_stores(root, ttl=10.0):
    """Two actors sharing one claims dir. Distinct fake hosts so
    ownership is decided by identity, and the dead-pid fast path never
    fires (each actor's pid is the live test process)."""
    clock = FakeClock()
    a = ClaimStore(root, ttl=ttl, owner=("host-a", os.getpid()), clock=clock)
    b = ClaimStore(root, ttl=ttl, owner=("host-b", os.getpid()), clock=clock)
    return a, b, clock


class TestAcquireRelease:
    def test_acquire_free_key(self, tmp_path):
        a, b, clock = two_stores(tmp_path)
        assert a.acquire("k1")
        assert a.path("k1").is_file()
        info = a.read("k1")
        assert info.host == "host-a" and a.owns(info)

    def test_live_claim_blocks_peer(self, tmp_path):
        a, b, clock = two_stores(tmp_path)
        assert a.acquire("k1")
        assert not b.acquire("k1")
        # the failed acquire must not clobber a's claim
        assert a.owns(a.read("k1"))

    def test_reacquire_own_claim_refreshes_heartbeat(self, tmp_path):
        a, b, clock = two_stores(tmp_path)
        assert a.acquire("k1")
        first = a.read("k1")
        clock.advance(5.0)
        assert a.acquire("k1")
        second = a.read("k1")
        assert second.heartbeat > first.heartbeat
        assert second.created == first.created

    def test_release_requires_ownership(self, tmp_path):
        a, b, clock = two_stores(tmp_path)
        assert a.acquire("k1")
        assert not b.release("k1")
        assert a.path("k1").is_file()
        assert a.release("k1")
        assert not a.path("k1").is_file()
        # releasing again is a no-op
        assert not a.release("k1")

    def test_distinct_keys_are_independent(self, tmp_path):
        a, b, clock = two_stores(tmp_path)
        assert a.acquire("k1")
        assert b.acquire("k2")
        assert not a.acquire("k2")
        assert not b.acquire("k1")


class TestStaleness:
    def test_stale_heartbeat_allows_takeover(self, tmp_path):
        a, b, clock = two_stores(tmp_path, ttl=10.0)
        assert a.acquire("k1")
        clock.advance(10.1)
        assert not b.is_live(b.read("k1"))
        assert b.acquire("k1")
        assert b.owns(b.read("k1"))

    def test_heartbeat_keeps_claim_live(self, tmp_path):
        a, b, clock = two_stores(tmp_path, ttl=10.0)
        assert a.acquire("k1")
        for _ in range(5):
            clock.advance(6.0)
            assert a.heartbeat(["k1"]) == 1
        assert not b.acquire("k1")

    def test_heartbeat_skips_claims_we_lost(self, tmp_path):
        a, b, clock = two_stores(tmp_path, ttl=10.0)
        assert a.acquire("k1")
        clock.advance(11.0)
        assert b.acquire("k1")  # takeover of a's stale claim
        assert a.heartbeat(["k1"]) == 0
        assert b.owns(b.read("k1"))

    def test_dead_pid_on_this_host_is_stale_immediately(self, tmp_path):
        # a real process that has already exited gives us a dead pid
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        assert not pid_alive(proc.pid)
        crashed = ClaimStore(tmp_path, ttl=1e9, owner=(HOST, proc.pid))
        assert crashed.acquire("k1")
        survivor = ClaimStore(tmp_path, ttl=1e9, owner=(HOST, os.getpid()))
        # heartbeat is fresh (huge ttl) but the owner is dead
        assert not survivor.is_live(survivor.read("k1"))
        assert survivor.acquire("k1")

    def test_dead_pid_on_other_host_waits_out_ttl(self, tmp_path):
        a, b, clock = two_stores(tmp_path, ttl=10.0)
        # pid liveness cannot be checked cross-host, so a fresh claim
        # from another host is live regardless of its pid
        (tmp_path / "claims").mkdir(exist_ok=True)
        a.path("k1").write_text(json.dumps({
            "key": "k1", "host": "host-elsewhere", "pid": -1,
            "heartbeat": a.clock(), "created": a.clock(),
        }))
        assert not b.acquire("k1")
        clock.advance(10.1)
        assert b.acquire("k1")


class TestReap:
    def test_reap_removes_only_stale(self, tmp_path):
        a, b, clock = two_stores(tmp_path, ttl=10.0)
        assert a.acquire("old")
        clock.advance(11.0)
        assert a.acquire("fresh")
        reaped = b.reap()
        assert reaped == ["old"]
        assert not b.path("old").exists()
        assert b.path("fresh").is_file()

    def test_reap_specific_keys(self, tmp_path):
        a, b, clock = two_stores(tmp_path, ttl=10.0)
        assert a.acquire("k1")
        assert a.acquire("k2")
        clock.advance(11.0)
        assert b.reap(["k1"]) == ["k1"]
        assert b.path("k2").is_file()

    def test_corrupt_claim_reads_as_absent(self, tmp_path):
        a, b, clock = two_stores(tmp_path)
        (tmp_path / "claims").mkdir(exist_ok=True)
        a.path("k1").write_text("{not json")
        assert a.read("k1") is None
        assert b.acquire("k1")  # corrupt claim does not block

    def test_partition_and_claims_listing(self, tmp_path):
        a, b, clock = two_stores(tmp_path, ttl=10.0)
        assert a.acquire("old")
        clock.advance(11.0)
        assert b.acquire("fresh")
        live, stale = a.partition()
        assert [c.key for c in live] == ["fresh"]
        assert [c.key for c in stale] == ["old"]
        assert {c.key for c in a.claims()} == {"old", "fresh"}


class TestFileLock:
    def test_lock_serializes_read_modify_write(self, tmp_path):
        """Unsynchronized read-modify-write would lose increments; the
        advisory lock must serialize them across threads (each entry
        opens its own fd, as separate processes would)."""
        counter = tmp_path / "counter"
        counter.write_text("0")
        lock_path = tmp_path / "lock"
        rounds = 50

        def bump():
            for _ in range(rounds):
                with FileLock(lock_path):
                    value = int(counter.read_text())
                    counter.write_text(str(value + 1))

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert int(counter.read_text()) == 4 * rounds

    def test_concurrent_acquires_elect_one_owner_per_key(self, tmp_path):
        """Many actors racing on the same key set: exactly one winner
        per key, every key won."""
        keys = [f"k{i}" for i in range(6)]
        wins = {}
        mutex = threading.Lock()

        def actor(ident):
            store = ClaimStore(
                tmp_path, ttl=60.0, owner=(f"host-{ident}", os.getpid())
            )
            for key in keys:
                if store.acquire(key):
                    with mutex:
                        wins.setdefault(key, []).append(ident)

        threads = [
            threading.Thread(target=actor, args=(i,)) for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(wins) == sorted(keys)
        assert all(len(owners) == 1 for owners in wins.values())


class TestHeartbeatKeeper:
    def test_keeper_refreshes_held_claims(self, tmp_path):
        store = ClaimStore(tmp_path, ttl=60.0)
        assert store.acquire("k1")
        before = store.read("k1").heartbeat
        with HeartbeatKeeper(store, interval=0.02) as keeper:
            keeper.add("k1")
            deadline = 100
            while store.read("k1").heartbeat == before and deadline:
                deadline -= 1
                threading.Event().wait(0.02)
        assert store.read("k1").heartbeat > before

    def test_keeper_ignores_discarded_keys(self, tmp_path):
        store = ClaimStore(tmp_path, ttl=60.0)
        assert store.acquire("k1")
        with HeartbeatKeeper(store, interval=0.02) as keeper:
            keeper.add("k1")
            keeper.discard("k1")
            assert keeper.held() == []
        # exiting the context stops the thread; nothing to assert
        # beyond a clean join (no exception)


class TestBackoff:
    def test_midpoint_rng_gives_pure_doubling(self):
        # jitter factor is 0.5 + rng(), so rng=0.5 scales by exactly 1
        b = Backoff(initial=0.1, cap=1.0, rng=lambda: 0.5)
        delays = [b.next() for _ in range(6)]
        assert delays == [
            pytest.approx(d) for d in (0.1, 0.2, 0.4, 0.8, 1.0, 1.0)
        ]

    def test_jitter_stays_within_half_to_threehalves(self):
        lo = Backoff(initial=0.2, cap=2.0, rng=lambda: 0.0)
        hi = Backoff(initial=0.2, cap=2.0, rng=lambda: 0.999)
        assert lo.next() == pytest.approx(0.1)
        assert hi.next() == pytest.approx(0.2 * 1.499)

    def test_reset_returns_to_initial(self):
        b = Backoff(initial=0.1, cap=5.0, rng=lambda: 0.5)
        for _ in range(4):
            b.next()
        b.reset()
        assert b.next() == pytest.approx(0.1)

    def test_random_jitter_is_bounded(self):
        b = Backoff(initial=0.05, cap=0.4)
        for _ in range(50):
            base = min(getattr(b, "_delay", None) or 0.05, 0.4)
            delay = b.next()
            assert 0.5 * base <= delay < 1.5 * base

    def test_cooperative_backend_backoff_is_capped_by_ttl(self):
        fast = CooperativeBackend(claim_ttl=1.0, poll_interval=0.2)
        backoff = fast._backoff()
        assert backoff.initial == 0.2
        assert backoff.cap == pytest.approx(0.5)  # ttl / 2
        slow = CooperativeBackend(claim_ttl=600.0, poll_interval=0.2)
        assert slow._backoff().cap == pytest.approx(2.0)  # hard cap
        # a poll interval above the cap still polls at its own pace
        coarse = CooperativeBackend(claim_ttl=1.0, poll_interval=3.0)
        assert coarse._backoff().cap == pytest.approx(3.0)


class TestCompletionCounter:
    def test_add_persists_and_parses(self, tmp_path):
        clock = FakeClock(1_000.0)
        counter = CompletionCounter(
            tmp_path, owner=("host-a", 11), clock=clock
        )
        clock.advance(30.0)
        counter.add(1)
        clock.advance(30.0)
        counter.add(2)
        infos = completions(tmp_path)
        assert len(infos) == 1
        info = infos[0]
        assert (info.host, info.pid, info.done) == ("host-a", 11, 3)
        assert info.started == 1_000.0
        assert info.updated == 1_060.0

    def test_rate_per_min_spans_start_to_last_update(self, tmp_path):
        clock = FakeClock(1_000.0)
        counter = CompletionCounter(
            tmp_path, owner=("host-a", 11), clock=clock
        )
        clock.advance(90.0)
        counter.add(3)
        (info,) = completions(tmp_path)
        assert info.rate_per_min() == pytest.approx(2.0)  # 3 in 90s

    def test_one_holder_per_file(self, tmp_path):
        a = CompletionCounter(tmp_path, owner=("host-a", 1))
        b = CompletionCounter(tmp_path, owner=("host-b", 2))
        a.add(1)
        b.add(5)
        infos = {(i.host, i.pid): i.done for i in completions(tmp_path)}
        assert infos == {("host-a", 1): 1, ("host-b", 2): 5}

    def test_counters_live_beside_claims_without_collision(
        self, tmp_path
    ):
        store = ClaimStore(tmp_path, ttl=60.0)
        assert store.acquire("deadbeef")
        counter = CompletionCounter(tmp_path)
        counter.add(1)
        # claims ignore counter files, counters ignore claim files
        assert [c.key for c in store.claims()] == ["deadbeef"]
        assert len(completions(tmp_path)) == 1
        assert counter.path().parent == store.dir

    def test_corrupt_counter_file_is_skipped(self, tmp_path):
        CompletionCounter(tmp_path, owner=("host-a", 1)).add(1)
        (tmp_path / "claims" / "bad.done").write_text("not json")
        infos = completions(tmp_path)
        assert len(infos) == 1

    def test_no_claims_dir_is_empty(self, tmp_path):
        assert completions(tmp_path / "missing") == []

    def test_hostile_holder_name_cannot_escape_claims_dir(
        self, tmp_path
    ):
        """Remote worker names arrive over the network: a name with
        path separators must be sanitized into the claims dir, not
        traverse out of it."""
        evil = CompletionCounter(
            tmp_path, owner=("../../outside", 7)
        )
        evil.add(1)
        assert evil.path().parent == tmp_path / "claims"
        assert "/" not in evil.path().name
        nested = CompletionCounter(tmp_path, owner=("rack1/node3", 8))
        nested.add(2)
        # both parse back with their verbatim identity
        infos = {(i.host, i.pid): i.done for i in completions(tmp_path)}
        assert infos == {("../../outside", 7): 1, ("rack1/node3", 8): 2}
        # and nothing was written outside the claims directory
        outside = [
            p for p in tmp_path.parent.glob("*.done")
        ] + [p for p in tmp_path.glob("*.done")]
        assert outside == []
