"""Unit tests for the program step language (repro.trace.program)."""

import pytest

from repro.errors import WorkloadError
from repro.trace.program import (
    Access,
    Barrier,
    LockAcquire,
    LockRelease,
    Program,
    ProgramSet,
)


def _two_node_set(steps0, steps1):
    p0, p1 = Program(0), Program(1)
    p0.extend(steps0)
    p1.extend(steps1)
    return ProgramSet("t", 2, {0: p0, 1: p1})


class TestProgramSet:
    def test_missing_node_rejected(self):
        with pytest.raises(WorkloadError):
            ProgramSet("t", 2, {0: Program(0)})

    def test_extra_node_rejected(self):
        with pytest.raises(WorkloadError):
            ProgramSet(
                "t", 1, {0: Program(0), 1: Program(1)}
            )

    def test_barrier_count_mismatch_rejected(self):
        ps = _two_node_set([Barrier(1)], [])
        with pytest.raises(WorkloadError):
            ps.validate()

    def test_matched_barriers_accepted(self):
        ps = _two_node_set([Barrier(1)], [Barrier(1)])
        ps.validate()

    def test_release_without_acquire_rejected(self):
        ps = _two_node_set(
            [LockRelease(1, 0x100, 0x10)], []
        )
        with pytest.raises(WorkloadError):
            ps.validate()

    def test_unreleased_lock_rejected(self):
        ps = _two_node_set(
            [LockAcquire(1, 0x100, 0x10, 0x14)], []
        )
        with pytest.raises(WorkloadError):
            ps.validate()

    def test_reacquire_held_lock_rejected(self):
        ps = _two_node_set(
            [
                LockAcquire(1, 0x100, 0x10, 0x14),
                LockAcquire(1, 0x100, 0x10, 0x14),
            ],
            [],
        )
        with pytest.raises(WorkloadError):
            ps.validate()

    def test_balanced_lock_pair_accepted(self):
        ps = _two_node_set(
            [
                LockAcquire(1, 0x100, 0x10, 0x14),
                Access(0x20, 0x200, True),
                LockRelease(1, 0x100, 0x18),
            ],
            [],
        )
        ps.validate()

    def test_total_steps(self):
        ps = _two_node_set(
            [Access(0x1, 0x20, False)], [Access(0x2, 0x40, True)]
        )
        assert ps.total_steps() == 2


class TestProgram:
    def test_append_and_len(self):
        p = Program(0)
        p.append(Access(0x1, 0x20, False))
        assert len(p) == 1

    def test_access_defaults(self):
        a = Access(0x1, 0x20, False)
        assert a.work == 0
