"""Unit tests for the full-report generator and its CLI command."""

from repro.experiments import report
from repro.experiments.cli import main


class TestReport:
    def test_selected_sections_only(self):
        doc = report.run(size="tiny", workloads=["em3d"],
                         sections=["figure6", "patterns"])
        assert set(doc.sections) == {"figure6", "patterns"}
        text = doc.render()
        assert "## figure6" in text
        assert "Paper: DSI 47%" in text
        assert "## figure9" not in text

    def test_runtimes_recorded(self):
        doc = report.run(size="tiny", workloads=["em3d"],
                         sections=["figure6"])
        assert doc.runtimes["figure6"] >= 0.0

    def test_cli_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main([
            "report", "--size", "tiny", "--workloads", "em3d",
            "--out", str(out),
        ])
        assert rc == 0
        text = out.read_text()
        assert text.startswith("# Full evaluation report")
        assert "figure6" in text
