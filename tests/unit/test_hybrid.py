"""Unit tests for the hybrid LTP+DSI policy (repro.ext.hybrid)."""

from repro.core.confidence import ConfidenceConfig
from repro.ext.hybrid import HybridPolicy
from repro.experiments import hybrid as hybrid_experiment
from repro.protocol.states import MissKind
from repro.sim import AccuracySimulator
from repro.trace.events import SyncKind
from tests.conftest import producer_consumer

FAST = ConfidenceConfig(initial=3, predict_threshold=3)


def fetch(policy, block, version, kind=MissKind.READ_FETCH, pc=0x10):
    return policy.on_access(block, pc, True, kind, version)


class TestVeto:
    def _trained_policy(self, completions=3):
        """LTP confident on block 1 after `completions` full traces."""
        policy = HybridPolicy(confidence=FAST, min_training=3)
        for _ in range(completions):
            fetch(policy, 1, version=2)
            policy.on_invalidation(1)
        return policy

    def test_ltp_coverage_vetoes_dsi_burst(self):
        policy = self._trained_policy()
        # make block 1 a DSI candidate again
        fetch(policy, 1, version=5)
        assert policy.on_sync(SyncKind.BARRIER, 1) == []
        assert policy.vetoed >= 1

    def test_training_grace_period_vetoes_early_bursts(self):
        policy = HybridPolicy(confidence=FAST, min_training=3)
        fetch(policy, 1, version=0)
        policy.on_invalidation(1)
        fetch(policy, 1, version=2)  # candidate, but only 1 completion
        assert policy.on_sync(SyncKind.BARRIER, 1) == []

    def test_uncovered_trained_block_falls_back_to_dsi(self):
        """Chaotic traces: completions accumulate but no signature is
        ever confirmed twice, so none saturates (default confidence:
        insert at 2, fire at 3) -> DSI takes over."""
        policy = HybridPolicy(min_training=3)  # default confidence
        for i in range(4):
            # a different trace every time: never learned twice
            fetch(policy, 1, version=2 * i, pc=0x100 + 8 * i)
            policy.on_access(1, 0x500 + 8 * i, False, None, None)
            policy.on_invalidation(1)
        fetch(policy, 1, version=99, pc=0x999)
        assert policy.on_sync(SyncKind.BARRIER, 1) == [1]

    def test_ltp_still_fires_per_access(self):
        policy = self._trained_policy()
        decision = fetch(policy, 1, version=9)
        # single-touch trace: confident signature fires at the fetch
        assert decision.self_invalidate


class TestEndToEnd:
    def test_hybrid_matches_ltp_on_stable_sharing(self):
        ps = producer_consumer(iterations=30)
        ltp_rep = AccuracySimulator(
            lambda n: HybridPolicy()
        ).run(ps)
        assert ltp_rep.predicted_fraction > 0.8

    def test_experiment_runs(self):
        res = hybrid_experiment.run(size="tiny",
                                    workloads=["em3d", "barnes"])
        text = res.render()
        assert "hybrid" in text
        by = res.reports["barnes"]
        # the fallback must not make barnes worse than plain LTP
        assert by["hybrid"].predicted_fraction >= \
            by["ltp"].predicted_fraction - 0.05
