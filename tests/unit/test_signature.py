"""Unit tests for trace signature encoders (repro.core.signature)."""

import pytest

from repro.core.signature import (
    BASE_SIGNATURE_BITS,
    LastPCEncoder,
    TruncatedAddEncoder,
    XorRotateEncoder,
)
from repro.errors import ConfigurationError


class TestTruncatedAdd:
    def test_init_masks_pc(self):
        enc = TruncatedAddEncoder(8)
        assert enc.init(0x1234) == 0x34

    def test_update_is_truncated_sum(self):
        enc = TruncatedAddEncoder(16)
        sig = enc.init(0x1000)
        sig = enc.update(sig, 0x2000)
        assert sig == 0x3000

    def test_wraps_at_width(self):
        enc = TruncatedAddEncoder(8)
        sig = enc.init(0xF0)
        assert enc.update(sig, 0x20) == 0x10

    def test_encode_trace_equals_manual_fold(self):
        enc = TruncatedAddEncoder(13)
        pcs = [0x4400, 0x5124, 0x4400, 0x61A8]
        sig = enc.init(pcs[0])
        for pc in pcs[1:]:
            sig = enc.update(sig, pc)
        assert enc.encode_trace(pcs) == sig

    def test_repetition_counts_distinguish_traces(self):
        """{pc} vs {pc, pc}: the loop double-touch of Figure 3(c)."""
        enc = TruncatedAddEncoder(30)
        assert enc.encode_trace([0x4000]) != enc.encode_trace(
            [0x4000, 0x4000]
        )

    def test_distinct_sets_distinct_signatures(self):
        enc = TruncatedAddEncoder(30)
        a = enc.encode_trace([0x1000, 0x2000])
        b = enc.encode_trace([0x1000, 0x2004])
        assert a != b

    def test_order_insensitive(self):
        """Truncated addition encodes the multiset, not the order."""
        enc = TruncatedAddEncoder(30)
        assert enc.encode_trace([0x10, 0x20, 0x30]) == enc.encode_trace(
            [0x30, 0x10, 0x20]
        )

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncatedAddEncoder(30).encode_trace([])

    def test_base_width_is_30(self):
        assert BASE_SIGNATURE_BITS == 30
        assert TruncatedAddEncoder().bits == 30

    def test_subtrace_prefix_property(self):
        """A prefix's signature is the running value mid-trace — the
        root cause of subtrace aliasing (Section 3.1)."""
        enc = TruncatedAddEncoder(30)
        short = [0x100, 0x200]
        long = short + [0x300]
        running = enc.init(long[0])
        running = enc.update(running, long[1])
        assert running == enc.encode_trace(short)


class TestLastPC:
    def test_signature_is_latest_pc(self):
        enc = LastPCEncoder(30)
        sig = enc.init(0x100)
        sig = enc.update(sig, 0x200)
        assert sig == 0x200

    def test_trace_encoding_keeps_only_final_pc(self):
        enc = LastPCEncoder(30)
        assert enc.encode_trace([0x1, 0x2, 0x3]) == 0x3


class TestXorRotate:
    def test_order_sensitive(self):
        enc = XorRotateEncoder(16)
        assert enc.encode_trace([0x12, 0x34]) != enc.encode_trace(
            [0x34, 0x12]
        )

    def test_stays_within_mask(self):
        enc = XorRotateEncoder(8)
        sig = enc.init(0xFFFF)
        for pc in (0x1234, 0xFFFF, 0x8001):
            sig = enc.update(sig, pc)
            assert 0 <= sig <= 0xFF


class TestValidation:
    @pytest.mark.parametrize("bits", [0, -3, 65])
    def test_bad_widths_rejected(self, bits):
        with pytest.raises(ConfigurationError):
            TruncatedAddEncoder(bits)

    @pytest.mark.parametrize("bits", [1, 6, 13, 30, 64])
    def test_good_widths_accepted(self, bits):
        assert TruncatedAddEncoder(bits).mask == (1 << bits) - 1
