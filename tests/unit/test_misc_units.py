"""Unit tests for small modules: errors, stats, cache/directory,
storage aggregation, oracle, null policy, analysis helpers."""

import pytest

from repro.analysis.formatting import bar_segments, format_table
from repro.analysis.speedup import geomean
from repro.core.base import StorageReport
from repro.core.null import NullPolicy
from repro.core.oracle import OraclePolicy, compute_last_touch_ordinals
from repro.core.storage import aggregate_reports, max_entries_per_block
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from repro.protocol.cache import NodeCaches
from repro.protocol.directory import Directory, DirectoryEntry
from repro.protocol.states import CacheState, DirState
from repro.trace.scheduler import interleave
from repro.trace.stats import collect_stream_stats
from tests.conftest import producer_consumer


class TestErrors:
    @pytest.mark.parametrize(
        "exc",
        [ConfigurationError, ProtocolError, SchedulingError,
         SimulationError, WorkloadError],
    )
    def test_hierarchy(self, exc):
        assert issubclass(exc, ReproError)


class TestNodeCaches:
    def test_install_lookup_evict(self):
        caches = NodeCaches(2)
        caches.install(0, 5, CacheState.SHARED)
        assert caches.lookup(0, 5) is CacheState.SHARED
        assert caches.lookup(1, 5) is None
        caches.evict(0, 5)
        assert caches.lookup(0, 5) is None

    def test_evict_absent_rejected(self):
        caches = NodeCaches(1)
        with pytest.raises(ProtocolError):
            caches.evict(0, 5)

    def test_footprint(self):
        caches = NodeCaches(1)
        caches.install(0, 1, CacheState.SHARED)
        caches.install(0, 2, CacheState.EXCLUSIVE)
        assert caches.footprint(0) == 2

    def test_zero_nodes_rejected(self):
        with pytest.raises(ProtocolError):
            NodeCaches(0)


class TestDirectoryEntryInvariants:
    def test_idle_with_owner_rejected(self):
        ent = DirectoryEntry(state=DirState.IDLE, owner=3)
        with pytest.raises(ProtocolError):
            ent.check_invariants()

    def test_shared_without_sharers_rejected(self):
        ent = DirectoryEntry(state=DirState.SHARED)
        with pytest.raises(ProtocolError):
            ent.check_invariants()

    def test_exclusive_with_sharers_rejected(self):
        ent = DirectoryEntry(
            state=DirState.EXCLUSIVE, owner=1, sharers={2}
        )
        with pytest.raises(ProtocolError):
            ent.check_invariants()

    def test_lazy_directory(self):
        d = Directory()
        assert len(d) == 0
        d.entry(7)
        assert len(d) == 1
        assert d.known_blocks() == {7}


class TestStreamStats:
    def test_counts_and_sharing(self):
        ps = producer_consumer(iterations=5, num_consumers=2)
        stats = collect_stream_stats(interleave(ps))
        assert stats.accesses == 5 * 3  # 1 write + 2 reads per iter
        assert stats.writes == 5
        assert stats.sharing_degree() == 3.0
        assert stats.actively_shared_blocks() == 1
        assert stats.sync_boundaries > 0
        assert 0 < stats.write_fraction < 1
        assert stats.reads == 10


class TestStorageAggregation:
    def test_aggregate_sums(self):
        reports = [
            StorageReport(13, 2, tracked_blocks=5, table_entries_total=10),
            StorageReport(13, 2, tracked_blocks=3, table_entries_total=2),
        ]
        agg = aggregate_reports(reports)
        assert agg.tracked_blocks == 8
        assert agg.entries_per_block == pytest.approx(1.5)

    def test_mixed_widths_rejected(self):
        reports = [
            StorageReport(13, 2, tracked_blocks=1, table_entries_total=1),
            StorageReport(30, 2, tracked_blocks=1, table_entries_total=1),
        ]
        with pytest.raises(ValueError):
            aggregate_reports(reports)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_reports([])

    def test_max_entries(self):
        reports = [
            StorageReport(13, 2, 2, 5, per_block_entries=[2, 3]),
            StorageReport(13, 2, 1, 7, per_block_entries=[7]),
        ]
        assert max_entries_per_block(reports) == 7

    def test_zero_blocks_zero_overhead(self):
        report = StorageReport(13, 2)
        assert report.entries_per_block == 0.0
        assert report.overhead_bytes_per_block == 0.0


class TestOracle:
    def test_ordinals_identify_last_touches(self):
        ps = producer_consumer(iterations=3)
        ordinals = compute_last_touch_ordinals(interleave(ps), 2)
        # every producer write is a last touch: the consumer's read
        # invalidates the writer's copy (migratory-favouring protocol)
        assert ordinals[0] == {0, 1, 2}
        # consumer reads 0 and 1 are invalidated by later writes; the
        # final read survives to the end of the run
        assert ordinals[1] == {0, 1}

    def test_policy_fires_at_ordinals(self):
        policy = OraclePolicy({1})
        assert not policy.on_access(9, 0x1, True, None, None).self_invalidate
        assert policy.on_access(9, 0x2, False, None, None).self_invalidate


class TestNullPolicy:
    def test_all_hooks_are_noops(self):
        p = NullPolicy()
        assert not p.on_access(1, 0x1, True, None, 0).self_invalidate
        p.on_invalidation(1)
        p.on_verified_correct(1)
        p.on_premature(1)
        from repro.trace.events import SyncKind

        assert p.on_sync(SyncKind.BARRIER, 1) == []
        assert p.storage_report().tracked_blocks == 0


class TestAnalysisHelpers:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "222"], ["33", "4"]])
        lines = out.splitlines()
        assert len({len(l) for l in lines[1:] if l}) >= 1
        assert "a" in lines[0] and "bb" in lines[0]

    def test_bar_segments_widths(self):
        bar = bar_segments(0.5, 0.5, 0.25, width=40)
        assert bar.count("#") == 20
        assert bar.count(".") == 20
        assert bar.count("!") == 10

    def test_bar_rounding_never_overflows_base(self):
        bar = bar_segments(0.66, 0.34, 0.0, width=10)
        assert bar.count("#") + bar.count(".") == 10

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
