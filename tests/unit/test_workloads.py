"""Unit tests for the nine workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.trace.events import MemoryAccess
from repro.trace.scheduler import interleave
from repro.trace.stats import collect_stream_stats
from repro.workloads import WORKLOAD_NAMES, get_workload
from repro.workloads.base import Workload, WorkloadParams


class TestRegistry:
    def test_all_nine_benchmarks_present(self):
        assert len(WORKLOAD_NAMES) == 9
        assert set(WORKLOAD_NAMES) == {
            "appbt", "barnes", "dsmc", "em3d", "moldyn",
            "ocean", "raytrace", "tomcatv", "unstructured",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("spice")

    def test_unknown_size_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("em3d", size="huge")

    def test_overrides_apply(self):
        wl = get_workload("em3d", "tiny", num_nodes=6, seed=9)
        assert wl.params.num_nodes == 6
        assert wl.params.seed == 9


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEveryWorkload:
    def test_builds_and_validates(self, name):
        ps = get_workload(name, "tiny").build()
        ps.validate()
        assert ps.name == name
        assert ps.num_nodes >= 2

    def test_produces_shared_traffic(self, name):
        ps = get_workload(name, "tiny").build()
        stats = collect_stream_stats(interleave(ps))
        assert stats.accesses > 0
        assert stats.actively_shared_blocks() > 0
        assert 0.0 < stats.write_fraction < 1.0

    def test_deterministic_for_same_seed(self, name):
        def fingerprint():
            ps = get_workload(name, "tiny", seed=5).build()
            return [
                (e.node, e.pc, e.address, e.is_write)
                for e in interleave(ps)
                if isinstance(e, MemoryAccess)
            ]

        assert fingerprint() == fingerprint()

    def test_scales_with_size(self, name):
        tiny = get_workload(name, "tiny").build().total_steps()
        small = get_workload(name, "small").build().total_steps()
        assert small > tiny


class TestSeedSensitivity:
    @pytest.mark.parametrize("name", ["barnes", "unstructured", "moldyn"])
    def test_randomized_structure_changes_with_seed(self, name):
        def fingerprint(seed):
            ps = get_workload(name, "tiny", seed=seed).build()
            return [
                (e.node, e.pc, e.address)
                for e in interleave(ps)
                if isinstance(e, MemoryAccess)
            ]

        assert fingerprint(1) != fingerprint(2)


class TestBaseClassValidation:
    def test_too_few_nodes_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("em3d", "tiny", num_nodes=1)

    def test_zero_iterations_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("em3d", "tiny", iterations=0)

    def test_partition_balanced(self):
        parts = Workload.partition(10, 3)
        sizes = [len(r) for r in parts]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_scaled_respects_minimum(self):
        params = WorkloadParams(scale=0.001)
        assert params.scaled(10, minimum=2) == 2


class TestStructuralSignatures:
    """Cheap checks that each workload exhibits the structural property
    its Section-5 behaviour depends on."""

    def test_em3d_boundary_blocks_touched_once_per_consumer(self):
        ps = get_workload("em3d", "tiny").build()
        # producers write without reading: every boundary write is by
        # the block's owner and there are no owner reads of own blocks
        reads_by_writer = 0
        writers = {}
        for e in interleave(ps):
            if not isinstance(e, MemoryAccess):
                continue
            if e.is_write:
                writers[e.address] = e.node
            elif writers.get(e.address) == e.node:
                reads_by_writer += 1
        assert reads_by_writer == 0

    def test_tomcatv_packs_two_elements_per_block(self):
        from repro.trace.program import Access

        ps = get_workload("tomcatv", "tiny").build()
        # some block must be read twice in a row by the same static
        # instruction within one node's program (the packed elements)
        double = False
        for prog in ps.programs.values():
            prev = None
            for s in prog.steps:
                if not isinstance(s, Access):
                    prev = None
                    continue
                key = (s.pc, s.address, s.is_write)
                if prev == key and not s.is_write:
                    double = True
                prev = key
        assert double

    def test_raytrace_single_global_lock(self):
        from repro.trace.program import LockAcquire

        ps = get_workload("raytrace", "tiny").build()
        lock_ids = {
            s.lock_id
            for p in ps.programs.values()
            for s in p.steps
            if isinstance(s, LockAcquire)
        }
        assert lock_ids == {0}

    def test_appbt_locks_have_fixed_spins(self):
        from repro.trace.program import LockAcquire

        ps = get_workload("appbt", "tiny").build()
        spins = {
            s.fixed_spins
            for p in ps.programs.values()
            for s in p.steps
            if isinstance(s, LockAcquire)
        }
        assert None not in spins

    def test_barnes_traces_change_across_iterations(self):
        """The octree mutation: the set of (pc, block) store pairs in
        the first iteration differs from the second."""
        ps = get_workload("barnes", "tiny").build()
        prog = ps.programs[0]
        from repro.trace.program import Access
        from repro.trace.program import Barrier as B

        per_iter, current = [], set()
        barriers = 0
        for s in prog.steps:
            if isinstance(s, B):
                barriers += 1
                if barriers % 3 == 0:  # 3 barriers per iteration
                    per_iter.append(current)
                    current = set()
            elif isinstance(s, Access) and s.is_write:
                current.add((s.pc, s.address))
        assert len(per_iter) >= 2
        assert per_iter[0] != per_iter[1]
