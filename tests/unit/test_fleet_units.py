"""Unit tests for the fleet orchestration pieces in isolation.

Policies are driven with a fake clock, the supervisor with fake
process objects, and the controller with both — no forking, no
sleeping, no sockets. The real wiring is covered by
``tests/integration/test_fleet.py``.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    FleetController,
    FleetSignals,
    QueueDepthPolicy,
    ThroughputPolicy,
    WorkerSupervisor,
    make_policy,
)


class FakeClock:
    def __init__(self, now=1_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FakeProc:
    """Process stand-in the supervisor can spawn/reap/terminate."""

    def __init__(self, name):
        self.name = name
        self.alive = True
        self.exitcode = None
        self.terminated = False

    def is_alive(self):
        return self.alive

    def terminate(self):
        self.terminated = True
        self.alive = False
        if self.exitcode is None:
            self.exitcode = -15

    def join(self, timeout=None):
        pass

    def die(self, exitcode):
        self.alive = False
        self.exitcode = exitcode


def _signals(queue_depth, live=0, throughput=0.0):
    return FleetSignals(
        queue_depth=queue_depth,
        live_workers=live,
        throughput=throughput,
    )


class TestQueueDepthPolicy:
    def test_targets_one_worker_per_chunk(self):
        policy = QueueDepthPolicy(
            specs_per_worker=4, max_workers=100, cooldown=0.0
        )
        assert policy.target(_signals(0)) == 0
        assert policy.target(_signals(1)) == 1
        assert policy.target(_signals(4)) == 1
        assert policy.target(_signals(5)) == 2
        assert policy.target(_signals(17)) == 5

    def test_decide_clamps_to_bounds(self):
        clock = FakeClock()
        policy = QueueDepthPolicy(
            specs_per_worker=1,
            min_workers=1,
            max_workers=3,
            cooldown=0.0,
            clock=clock,
        )
        assert policy.decide(_signals(100, live=1)) == 3
        assert policy.decide(_signals(0, live=3)) == 1  # min floor

    def test_cooldown_blocks_consecutive_changes(self):
        clock = FakeClock()
        policy = QueueDepthPolicy(
            specs_per_worker=1, max_workers=8, cooldown=10.0,
            clock=clock,
        )
        assert policy.decide(_signals(4, live=0)) == 4
        clock.advance(1.0)
        # a second change inside the cooldown holds the fleet size
        assert policy.decide(_signals(8, live=4)) == 4
        clock.advance(10.0)
        assert policy.decide(_signals(8, live=4)) == 8

    def test_shrinks_mid_queue_now_that_retirement_drains(self):
        """Since protocol v3 retirement is a graceful drain (the
        worker finishes its batch and exits; no leases stranded), so
        the policy follows the backlog down even while it is
        non-empty."""
        clock = FakeClock()
        policy = QueueDepthPolicy(
            specs_per_worker=10, max_workers=8, cooldown=0.0,
            clock=clock,
        )
        assert policy.decide(_signals(40, live=0)) == 4
        # backlog shrank to one chunk: follow it down immediately
        assert policy.decide(_signals(3, live=4)) == 1
        # drained: release the fleet entirely
        assert policy.decide(_signals(0, live=1)) == 0

    def test_no_change_needs_no_cooldown(self):
        clock = FakeClock()
        policy = QueueDepthPolicy(
            specs_per_worker=2, max_workers=8, cooldown=10.0,
            clock=clock,
        )
        assert policy.decide(_signals(8, live=0)) == 4
        clock.advance(1.0)
        # target == live: stable answers never wait out a cooldown
        assert policy.decide(_signals(8, live=4)) == 4
        clock.advance(1.0)
        assert policy.decide(_signals(7, live=4)) == 4

    def test_crash_replacement_is_never_blocked_by_cooldown(self):
        """The cooldown limits how often *desired* moves — replacing
        a crashed worker (live < unchanged desired) must go through
        on the next decision, deep inside the cooldown."""
        clock = FakeClock()
        policy = QueueDepthPolicy(
            specs_per_worker=2, max_workers=8, cooldown=10.0,
            clock=clock,
        )
        assert policy.decide(_signals(8, live=0)) == 4
        clock.advance(1.0)  # well inside the cooldown
        # one worker crashed; the policy still wants 4
        assert policy.decide(_signals(8, live=3)) == 4

    def test_out_of_bounds_live_corrected_despite_cooldown(self):
        clock = FakeClock()
        policy = QueueDepthPolicy(
            specs_per_worker=1, max_workers=3, cooldown=100.0,
            clock=clock,
        )
        assert policy.decide(_signals(10, live=0)) == 3
        clock.advance(1.0)
        # max_workers shrank (operator reconfigured): a live count
        # beyond the bounds is corrected immediately
        policy.max_workers = 2
        assert policy.decide(_signals(10, live=3)) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            QueueDepthPolicy(min_workers=-1)
        with pytest.raises(ConfigurationError):
            QueueDepthPolicy(min_workers=5, max_workers=4)
        with pytest.raises(ConfigurationError):
            QueueDepthPolicy(cooldown=-1.0)
        with pytest.raises(ConfigurationError):
            QueueDepthPolicy(specs_per_worker=0)


class TestThroughputPolicy:
    def test_cold_fleet_uses_assumed_rate(self):
        policy = ThroughputPolicy(
            drain_target=60.0, assumed_rate=6.0, max_workers=100,
            cooldown=0.0,
        )
        # 12 specs at 6 jobs/min/worker and a 60s target -> 2 workers
        assert policy.target(_signals(12)) == 2

    def test_observed_throughput_refines_estimate(self):
        policy = ThroughputPolicy(
            drain_target=60.0, assumed_rate=6.0, max_workers=100,
            cooldown=0.0,
        )
        # 2 live workers doing 24 jobs/min total -> 12/worker; 24
        # queued specs drain in 60s with 2 workers
        assert policy.target(_signals(24, live=2, throughput=24.0)) == 2
        # slower observed rate needs a bigger fleet
        assert policy.target(_signals(24, live=2, throughput=4.0)) == 12

    def test_empty_queue_targets_zero(self):
        policy = ThroughputPolicy(max_workers=8, cooldown=0.0)
        assert policy.target(_signals(0, live=4, throughput=60.0)) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ThroughputPolicy(drain_target=0)
        with pytest.raises(ConfigurationError):
            ThroughputPolicy(assumed_rate=0)


class TestMakePolicy:
    def test_builds_both_policies(self):
        queue = make_policy(
            "queue", specs_per_worker=2, max_workers=7,
            drain_target=None,
        )
        assert queue.specs_per_worker == 2
        assert queue.max_workers == 7
        through = make_policy("throughput", drain_target=30.0)
        assert through.drain_target == 30.0

    def test_foreign_knobs_are_dropped(self):
        # CLI passes every knob; the factory keeps the relevant ones
        queue = make_policy(
            "queue", specs_per_worker=3, drain_target=30.0,
        )
        assert queue.specs_per_worker == 3
        through = make_policy(
            "throughput", specs_per_worker=3, drain_target=30.0,
        )
        assert through.drain_target == 30.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("magic")


class TestWorkerSupervisor:
    def _supervisor(self, clock=None):
        spawned = []

        def spawn(name, address):
            proc = FakeProc(name)
            spawned.append(proc)
            return proc

        sup = WorkerSupervisor(
            ("127.0.0.1", 1), spawn=spawn, clock=clock or FakeClock()
        )
        return sup, spawned

    def test_scale_up_then_down_retires_newest_first(self):
        sup, spawned = self._supervisor()
        assert sup.scale_to(3) == 3
        assert sup.live() == 3
        assert sup.scale_to(1) == -2
        assert sup.live() == 1
        # newest retired first: the oldest keeps its warm memo
        assert [p.terminated for p in spawned] == [False, True, True]
        assert sup.retired == 2

    def test_reap_reports_unsolicited_exits_only(self):
        sup, spawned = self._supervisor()
        sup.scale_to(2)
        sup.scale_to(1)  # retire one: must not show up in reap()
        assert sup.reap() == []
        spawned[0].die(exitcode=1)
        exits = sup.reap()
        assert [e.crashed for e in exits] == [True]
        assert exits[0].exitcode == 1
        assert sup.live() == 0
        # reaped workers are gone; a clean exit is not a crash
        sup.scale_to(1)
        spawned[-1].die(exitcode=0)
        assert [e.crashed for e in sup.reap()] == [False]

    def test_scale_replaces_dead_workers(self):
        sup, spawned = self._supervisor()
        sup.scale_to(2)
        spawned[0].die(exitcode=1)
        assert sup.scale_to(2) == 1  # one fresh fork
        assert sup.live() == 2

    def test_scale_to_never_swallows_crash_exits(self):
        """scale_to must leave dead workers for reap() — the crash
        circuit breaker counts only what reap() reports, so a crash
        landing just before a scaling action must still surface."""
        sup, spawned = self._supervisor()
        sup.scale_to(2)
        spawned[0].die(exitcode=1)
        sup.scale_to(2)  # respawns, but must not reap the corpse
        exits = sup.reap()
        assert [e.crashed for e in exits] == [True]

    def test_worker_names_are_slots_reused_across_respawns(self):
        """A serve fleet scaling 0->N->0 per grid must not mint a
        fresh worker name (and thus a fresh completion-counter file)
        per spawn — names are bounded slots."""
        sup, spawned = self._supervisor()
        sup.scale_to(2)
        first_names = set(sup.names())
        sup.scale_to(0)
        sup.scale_to(2)
        assert set(sup.names()) == first_names
        assert len({p.name for p in spawned}) == 2  # 4 spawns, 2 names

    def test_shrink_survives_worker_dying_mid_scan(self):
        """A worker that dies between the live() count and the
        retirement scan must not raise out of scale_to."""
        sup, spawned = self._supervisor()
        sup.scale_to(1)

        class Flipper:
            """Alive for the live() count, dead for the scan."""

            def __init__(self):
                self.calls = 0
                self.exitcode = 1

            def is_alive(self):
                self.calls += 1
                return self.calls == 1

            def terminate(self):
                pass

            def join(self, timeout=None):
                pass

        sup.scale_to(0)  # retire the fake proc normally first
        sup._procs["flipper"] = Flipper()
        assert sup.scale_to(0) == 0  # no StopIteration
        assert [e.exitcode for e in sup.reap()] == [1]

    def test_scale_up_is_bounded_when_children_die_on_arrival(self):
        """Children that crash faster than we fork must not turn one
        scale_to call into an unbounded fork loop — the spawn count
        is fixed up front and the breaker handles the rest."""
        spawned = []

        def spawn(name, address):
            proc = FakeProc(name)
            proc.alive = False  # dies before the next live() check
            proc.exitcode = 1
            spawned.append(proc)
            return proc

        sup = WorkerSupervisor(("127.0.0.1", 1), spawn=spawn)
        assert sup.scale_to(3) == 3  # exactly 3 forks, no loop
        assert len(spawned) == 3
        assert sup.live() == 0
        # the corpses are still visible to reap() for crash counting
        assert len(sup.reap()) == 3

    def test_stop_terminates_everything(self):
        sup, spawned = self._supervisor()
        sup.scale_to(3)
        sup.stop()
        assert sup.live() == 0
        assert all(p.terminated for p in spawned)


class TestWorkerSupervisorDrain:
    def _supervisor(self, drain_grace=30.0, drain_accepts=True):
        clock = FakeClock()
        spawned = []
        drained = []

        def spawn(name, address):
            proc = FakeProc(name)
            spawned.append(proc)
            return proc

        def drain(name):
            drained.append(name)
            return drain_accepts

        sup = WorkerSupervisor(
            ("127.0.0.1", 1),
            spawn=spawn,
            clock=clock,
            drain=drain,
            drain_grace=drain_grace,
        )
        return sup, spawned, drained, clock

    def test_shrink_prefers_drain_over_terminate(self):
        sup, spawned, drained, clock = self._supervisor()
        sup.scale_to(3)
        assert sup.scale_to(1) == -2
        # nothing terminated: both victims were asked to drain and
        # stay alive until their in-flight batch finishes
        assert not any(p.terminated for p in spawned)
        assert len(drained) == 2
        assert sup.live() == 3
        assert sup.pending_retirement() == 2
        assert sup.retired == 2
        # newest drained first (oldest keeps its warm memos)
        assert drained == [spawned[2].name, spawned[1].name]

    def test_drained_exit_is_solicited_not_a_crash(self):
        sup, spawned, drained, clock = self._supervisor()
        sup.scale_to(2)
        sup.scale_to(1)
        victim = next(p for p in spawned if p.name == drained[0])
        victim.die(exitcode=0)
        # the drain completing must not surface as an exit event —
        # the controller's crash breaker only counts unsolicited ones
        assert sup.reap() == []
        assert sup.live() == 1
        assert sup.pending_retirement() == 0
        assert sup.retired == 1  # counted once, at drain time

    def test_drain_deadline_escalates_to_terminate(self):
        sup, spawned, drained, clock = self._supervisor(
            drain_grace=10.0
        )
        sup.scale_to(2)
        sup.scale_to(1)
        victim = next(p for p in spawned if p.name == drained[0])
        clock.advance(5.0)
        assert sup.reap() == []  # inside the grace: still draining
        assert victim.alive
        clock.advance(6.0)
        assert sup.reap() == []  # escalation is silent too
        assert victim.terminated
        assert sup.pending_retirement() == 0
        assert sup.retired == 1  # not double-counted on escalation

    def test_drain_refusal_falls_back_to_terminate(self):
        sup, spawned, drained, clock = self._supervisor(
            drain_accepts=False
        )
        sup.scale_to(2)
        assert sup.scale_to(1) == -1
        assert len(drained) == 1  # asked, refused
        assert sum(p.terminated for p in spawned) == 1
        assert sup.live() == 1
        assert sup.pending_retirement() == 0

    def test_scale_counts_draining_workers_as_retired(self):
        """A worker already draining is committed to leave: asking
        for the same size again must not drain another one, and a
        scale-up spawns fresh capacity rather than waiting."""
        sup, spawned, drained, clock = self._supervisor()
        sup.scale_to(3)
        sup.scale_to(1)
        assert len(drained) == 2
        sup.scale_to(1)  # idempotent: no third drain
        assert len(drained) == 2
        assert sup.scale_to(2) == 1  # spawns; draining pair ignored
        assert len(spawned) == 4


class TestThroughputWindow:
    def test_windowed_rate_tracks_recent_deltas_not_lifetime(self):
        from repro.fleet import ThroughputWindow

        window = ThroughputWindow(window=60.0)
        # an old burst: 600 jobs long ago must not dilute the rate
        assert window.observe(600, now=1_000.0) == 0.0
        # quiet for ages, then 30 jobs in the last 60s -> 30/min
        assert window.observe(600, now=9_000.0) == 0.0
        rate = window.observe(630, now=9_060.0)
        assert rate == pytest.approx(30.0)

    def test_counter_prune_resets_the_window(self):
        from repro.fleet import ThroughputWindow

        window = ThroughputWindow(window=60.0)
        window.observe(100, now=0.0)
        window.observe(120, now=30.0)
        # counters pruned: total shrinks; no negative rates
        assert window.observe(5, now=31.0) == 0.0
        assert window.observe(8, now=61.0) == pytest.approx(6.0)


class TestFleetController:
    def _controller(self, tmp_path=None, max_crashes=3, signals=None):
        clock = FakeClock()
        spawned = []

        def spawn(name, address):
            proc = FakeProc(name)
            spawned.append(proc)
            return proc

        sup = WorkerSupervisor(
            ("127.0.0.1", 1), spawn=spawn, clock=clock
        )
        policy = QueueDepthPolicy(
            specs_per_worker=2, max_workers=4, cooldown=0.0,
            clock=clock,
        )
        state = {"queue": 0, "throughput": 0.0}
        controller = FleetController(
            sup,
            policy,
            signals=signals or (
                lambda: (state["queue"], state["throughput"])
            ),
            clock=clock,
            max_crashes=max_crashes,
            status_path=(
                tmp_path / "fleet.json" if tmp_path else None
            ),
        )
        return controller, state, spawned, clock

    def test_scales_up_and_down_with_events(self):
        controller, state, spawned, clock = self._controller()
        state["queue"] = 7
        events = controller.tick()
        assert [e.action for e in events] == ["up"]
        assert controller.supervisor.live() == 4
        assert controller.desired == 4
        clock.advance(5)
        state["queue"] = 0
        events = controller.tick()
        assert [e.action for e in events] == ["down"]
        assert controller.supervisor.live() == 0
        assert [e.action for e in controller.events] == ["up", "down"]

    def test_crash_circuit_breaker_halts_scaling(self):
        controller, state, spawned, clock = self._controller(
            max_crashes=3
        )
        state["queue"] = 2
        controller.tick()
        assert controller.supervisor.live() == 1
        for _ in range(3):
            # the worker crashes; the controller reaps and respawns
            spawned[-1].die(exitcode=1)
            clock.advance(1)
            controller.tick()
        assert controller.halted
        halts = [e for e in controller.events if e.action == "halt"]
        assert len(halts) == 1
        # halted: no more respawns however deep the queue
        before = len(spawned)
        clock.advance(1)
        controller.tick()
        assert len(spawned) == before
        # operator re-arms
        controller.reset_crashes()
        controller.tick()
        assert controller.supervisor.live() == 1

    def test_latched_halt_survives_a_clean_exit(self):
        """Once the breaker latches, only reset_crashes() releases
        it — a stray clean exit must not silently resume scaling
        while the status still says HALTED."""
        controller, state, spawned, clock = self._controller(
            max_crashes=2
        )
        state["queue"] = 2
        controller.tick()
        for _ in range(2):
            spawned[-1].die(exitcode=1)
            clock.advance(1)
            controller.tick()
        assert controller.halted
        # a worker spawned earlier exits cleanly: still halted, and
        # still not scaling
        spawned.append(FakeProc("stray"))
        controller.supervisor._procs["stray"] = spawned[-1]
        spawned[-1].die(exitcode=0)
        clock.advance(1)
        before = len(spawned)
        controller.tick()
        assert controller.halted
        assert len(spawned) == before  # no respawn while latched

    def test_clean_exit_resets_crash_count(self):
        controller, state, spawned, clock = self._controller(
            max_crashes=2
        )
        state["queue"] = 2
        controller.tick()
        spawned[-1].die(exitcode=1)
        clock.advance(1)
        controller.tick()
        spawned[-1].die(exitcode=0)  # clean exit re-arms the breaker
        clock.advance(1)
        controller.tick()
        spawned[-1].die(exitcode=1)
        clock.advance(1)
        controller.tick()
        assert not controller.halted

    def test_status_file_mirrors_state(self, tmp_path):
        controller, state, spawned, clock = self._controller(
            tmp_path=tmp_path
        )
        state["queue"] = 3
        controller.tick()
        data = json.loads((tmp_path / "fleet.json").read_text())
        assert data["live"] == 2
        assert data["desired"] == 2
        assert data["queue_depth"] == 3
        assert data["policy"] == "queue"
        assert data["halted"] is False
        assert [e["action"] for e in data["events"]] == ["up"]


class TestSubmitQuotaClamp:
    """GridClient.submit quota backpressure with an injectable clock.

    The broker's ``busy`` reply advertises ``retry_after``; the client
    must spend its whole ``quota_wait`` budget before raising — when
    the advertised wait overshoots the remaining budget, the last
    sleep clamps to what's left and the submit is retried once at the
    deadline. No sockets: ``_request`` is monkeypatched and the
    client is built without connecting.
    """

    def _client(self, monkeypatch, replies):
        from repro.runner import remote

        client = remote.GridClient.__new__(remote.GridClient)
        client.name = "unit-client"
        client._stream = object()
        client.grid = None
        client.specs = 0
        client.cached = 0
        calls = []

        def fake_request(stream, message):
            calls.append(message)
            return replies.pop(0)

        monkeypatch.setattr(remote, "_request", fake_request)
        return client, calls

    def _busy(self, retry_after):
        return {
            "type": "busy",
            "retry_after": retry_after,
            "message": "quota",
        }

    def _grid(self):
        return {"type": "grid", "grid": "g-1", "specs": 1, "cached": 0}

    def test_overshooting_retry_after_clamps_to_budget(
        self, monkeypatch
    ):
        # failing-before: retry_after=10 > quota_wait=1 used to raise
        # immediately, even though a 1s sleep fit a final attempt
        client, calls = self._client(
            monkeypatch, [self._busy(10.0), self._grid()]
        )
        clock = FakeClock(now=0.0)
        sleeps = []

        def sleep(dt):
            sleeps.append(dt)
            clock.advance(dt)

        reply = client.submit(
            [], quota_wait=1.0, clock=clock, sleep=sleep
        )
        assert reply["grid"] == "g-1"
        assert sleeps == [1.0]  # clamped, not the advertised 10s
        assert len(calls) == 2  # the deadline attempt happened

    def test_still_busy_at_deadline_raises(self, monkeypatch):
        from repro.runner.remote import RemoteExecutionError

        client, calls = self._client(
            monkeypatch, [self._busy(10.0), self._busy(10.0)]
        )
        clock = FakeClock(now=0.0)
        sleeps = []

        def sleep(dt):
            sleeps.append(dt)
            clock.advance(dt)

        with pytest.raises(RemoteExecutionError, match="quota"):
            client.submit(
                [], quota_wait=1.0, clock=clock, sleep=sleep
            )
        assert sleeps == [1.0]  # exactly one clamped sleep, no more
        assert len(calls) == 2

    def test_within_budget_retries_use_advertised_wait(
        self, monkeypatch
    ):
        client, calls = self._client(
            monkeypatch,
            [self._busy(0.2), self._busy(0.2), self._grid()],
        )
        clock = FakeClock(now=0.0)
        sleeps = []

        def sleep(dt):
            sleeps.append(dt)
            clock.advance(dt)

        reply = client.submit(
            [], quota_wait=1.0, clock=clock, sleep=sleep
        )
        assert reply["grid"] == "g-1"
        assert sleeps == [0.2, 0.2]

    def test_unbounded_quota_wait_never_clamps(self, monkeypatch):
        client, calls = self._client(
            monkeypatch,
            [self._busy(5.0), self._busy(5.0), self._grid()],
        )
        clock = FakeClock(now=0.0)
        sleeps = []

        def sleep(dt):
            sleeps.append(dt)
            clock.advance(dt)

        client.submit(
            [], quota_wait=None, clock=clock, sleep=sleep
        )
        assert sleeps == [5.0, 5.0]
