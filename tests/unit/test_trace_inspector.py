"""Unit tests for the trace inspector (repro.analysis.traces)."""

from repro.analysis.traces import (
    extract_traces,
    format_trace,
    trace_digest,
)
from repro.trace.scheduler import interleave
from repro.workloads import get_workload
from tests.conftest import migratory_rmw, producer_consumer


class TestExtraction:
    def test_producer_consumer_traces(self):
        ps = producer_consumer(iterations=4, writes_per_iter=2)
        out = extract_traces(interleave(ps), ps.num_nodes)
        block = 0x100 * 32 >> 5
        producer = out[(0, block)]
        # writer's trace: the two store PCs, repeated per iteration;
        # every one completes (the consumer's read invalidates even the
        # final write under the migratory-favouring protocol)
        assert len(producer.traces) == 4
        assert all(t == (0x100, 0x104) for t in producer.traces)

    def test_consumer_single_touch(self):
        ps = producer_consumer(iterations=4)
        out = extract_traces(interleave(ps), ps.num_nodes)
        block = 0x100 * 32 >> 5
        consumer = out[(1, block)]
        assert all(len(t) == 1 for t in consumer.traces)
        assert not consumer.last_pc_ambiguous
        assert consumer.max_pc_repetition == 1

    def test_migratory_traces(self):
        ps = migratory_rmw(iterations=4, nodes=2)
        out = extract_traces(interleave(ps), ps.num_nodes)
        block = 0x200 * 32 >> 5
        tr = out[(0, block)]
        assert all(t == (0x300, 0x304) for t in tr.traces)

    def test_unfinished_traces_optional(self):
        ps = producer_consumer(iterations=2)
        without = extract_traces(interleave(ps), ps.num_nodes)
        with_open = extract_traces(
            interleave(ps), ps.num_nodes, include_unfinished=True
        )
        total_without = sum(
            len(s.traces) for s in without.values()
        )
        total_with = sum(len(s.traces) for s in with_open.values())
        assert total_with > total_without

    def test_last_pc_ambiguity_detection(self):
        """tomcatv's double-touch traces must flag the ambiguity."""
        ps = get_workload("tomcatv", "tiny").build()
        out = extract_traces(interleave(ps), ps.num_nodes)
        assert any(s.last_pc_ambiguous for s in out.values())

    def test_em3d_traces_are_single_touch(self):
        ps = get_workload("em3d", "tiny").build()
        out = extract_traces(interleave(ps), ps.num_nodes)
        shared = [
            s for s in out.values() if s.traces
        ]
        single = sum(
            1 for s in shared
            if all(len(t) == 1 for t in s.traces)
        )
        assert single / len(shared) > 0.9


class TestRendering:
    def test_format_trace_hex(self):
        assert format_trace((0x10, 0x20)) == "{0x10, 0x20}"

    def test_format_trace_labels(self):
        labels = {0x10: "sweep.load"}
        assert format_trace((0x10, 0x20), labels) == \
            "{sweep.load, 0x20}"

    def test_digest(self):
        ps = producer_consumer(iterations=5)
        out = extract_traces(interleave(ps), ps.num_nodes)
        text = trace_digest(out)
        assert "traces" in text and "distinct" in text
