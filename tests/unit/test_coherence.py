"""Unit tests for the functional coherence engine (repro.protocol)."""

import pytest

from repro.errors import ProtocolError
from repro.protocol.coherence import CoherenceEngine
from repro.protocol.states import CacheState, DirState, MissKind


@pytest.fixture
def engine():
    return CoherenceEngine(num_nodes=4)


A = 0x1000  # block 0x80
B = 0x2000  # block 0x100


class TestBasicTransitions:
    def test_first_read_is_read_fetch(self, engine):
        res = engine.access(0, 0x10, A, False)
        assert not res.hit
        assert res.miss_kind is MissKind.READ_FETCH
        assert res.trace_start
        assert res.version == 0

    def test_read_after_read_hits(self, engine):
        engine.access(0, 0x10, A, False)
        res = engine.access(0, 0x14, A, False)
        assert res.hit

    def test_write_grants_exclusive(self, engine):
        res = engine.access(0, 0x10, A, True)
        assert res.miss_kind is MissKind.WRITE_FETCH
        ent = engine.directory.entry(engine.block_of(A))
        assert ent.state is DirState.EXCLUSIVE
        assert ent.owner == 0
        assert ent.version == 1

    def test_write_after_write_hits(self, engine):
        engine.access(0, 0x10, A, True)
        assert engine.access(0, 0x14, A, True).hit

    def test_read_hit_on_exclusive(self, engine):
        engine.access(0, 0x10, A, True)
        assert engine.access(0, 0x14, A, False).hit

    def test_same_page_different_blocks_independent(self, engine):
        engine.access(0, 0x10, A, True)
        res = engine.access(0, 0x10, A + 32, True)
        assert res.miss_kind is MissKind.WRITE_FETCH


class TestInvalidationDelivery:
    def test_write_invalidates_all_sharers(self, engine):
        for node in (0, 1, 2):
            engine.access(node, 0x10, A, False)
        res = engine.access(3, 0x20, A, True)
        assert sorted(i.node for i in res.invalidations) == [0, 1, 2]
        assert engine.external_invalidations == 3

    def test_upgrade_spares_the_writer(self, engine):
        engine.access(0, 0x10, A, False)
        engine.access(1, 0x10, A, False)
        res = engine.access(0, 0x14, A, True)
        assert res.miss_kind is MissKind.UPGRADE
        assert [i.node for i in res.invalidations] == [1]

    def test_upgrade_does_not_restart_trace(self, engine):
        """Permission upgrades keep the block resident: the trace that
        began at the fetch continues (DESIGN.md trace definition)."""
        engine.access(0, 0x10, A, False)
        res = engine.access(0, 0x14, A, True)
        assert not res.trace_start

    def test_read_invalidates_writer_migratory_protocol(self, engine):
        engine.access(0, 0x10, A, True)
        res = engine.access(1, 0x20, A, False)
        assert [i.node for i in res.invalidations] == [0]
        ent = engine.directory.entry(engine.block_of(A))
        assert ent.state is DirState.SHARED
        assert ent.owner is None

    def test_victim_cache_emptied(self, engine):
        engine.access(0, 0x10, A, True)
        engine.access(1, 0x20, A, False)
        assert not engine.holds(0, engine.block_of(A))

    def test_version_increments_per_write_phase(self, engine):
        block = engine.block_of(A)
        engine.access(0, 0x10, A, True)   # v 0 -> 1
        engine.access(1, 0x20, A, False)  # read, no bump
        engine.access(2, 0x30, A, True)   # v 1 -> 2
        assert engine.directory.entry(block).version == 2


class TestSelfInvalidation:
    def test_self_invalidate_clears_copy_and_masks(self, engine):
        block = engine.block_of(A)
        engine.access(0, 0x10, A, True)
        engine.self_invalidate(0, block)
        ent = engine.directory.entry(block)
        assert ent.state is DirState.IDLE
        assert ent.verification_mask == {0: CacheState.EXCLUSIVE}
        assert not engine.holds(0, block)

    def test_self_invalidate_uncached_rejected(self, engine):
        with pytest.raises(ProtocolError):
            engine.self_invalidate(0, engine.block_of(A))

    def test_correct_verification_on_remote_access(self, engine):
        """A masked exclusive copy is verified correct by any remote
        access (the copy would have been invalidated)."""
        block = engine.block_of(A)
        engine.access(0, 0x10, A, True)
        engine.self_invalidate(0, block)
        res = engine.access(1, 0x20, A, False)
        assert res.verified_correct == [0]
        assert not res.premature
        # and crucially: no invalidation message was needed
        assert res.invalidations == []

    def test_premature_when_self_invalidator_returns(self, engine):
        block = engine.block_of(A)
        engine.access(0, 0x10, A, True)
        engine.self_invalidate(0, block)
        res = engine.access(0, 0x14, A, True)
        assert res.premature
        assert res.verified_correct == []

    def test_shared_mask_not_resolved_by_another_read(self, engine):
        """A masked *shared* copy is only verified by a write: another
        reader proves nothing (Section 4 phase-change rule)."""
        block = engine.block_of(A)
        engine.access(0, 0x10, A, False)
        engine.self_invalidate(0, block)
        res = engine.access(1, 0x20, A, False)
        assert res.verified_correct == []
        assert engine.directory.entry(block).verification_mask

    def test_shared_mask_resolved_by_write(self, engine):
        block = engine.block_of(A)
        engine.access(0, 0x10, A, False)
        engine.access(1, 0x14, A, False)
        engine.self_invalidate(0, block)
        res = engine.access(2, 0x20, A, True)
        assert res.verified_correct == [0]
        # node 1 still held a real copy: it gets a real invalidation
        assert [i.node for i in res.invalidations] == [1]

    def test_all_sharers_self_invalidate_leaves_idle(self, engine):
        block = engine.block_of(A)
        engine.access(0, 0x10, A, False)
        engine.access(1, 0x14, A, False)
        engine.self_invalidate(0, block)
        engine.self_invalidate(1, block)
        assert engine.directory.entry(block).state is DirState.IDLE

    def test_unresolved_count(self, engine):
        block = engine.block_of(A)
        engine.access(0, 0x10, A, False)
        engine.self_invalidate(0, block)
        assert engine.unresolved_self_invalidations() == 1

    def test_requester_premature_and_others_verified_together(self, engine):
        block = engine.block_of(A)
        engine.access(0, 0x10, A, False)
        engine.access(1, 0x14, A, False)
        engine.self_invalidate(0, block)
        engine.self_invalidate(1, block)
        # node 0 comes back with a write: premature for 0, but node 1's
        # dropped copy would have been invalidated -> correct for 1.
        res = engine.access(0, 0x20, A, True)
        assert res.premature
        assert res.verified_correct == [1]


class TestInvariants:
    def test_directory_invariants_hold_through_a_mix(self, engine):
        ops = [
            (0, A, True), (1, A, False), (2, A, False), (1, A, True),
            (0, B, False), (1, B, True), (3, B, False), (3, A, True),
        ]
        for node, address, is_write in ops:
            engine.access(node, 0x10, address, is_write)
            engine.directory.check_all_invariants()

    def test_cache_and_directory_agree(self, engine):
        engine.access(0, 0x10, A, True)
        engine.access(1, 0x14, A, False)
        engine.access(2, 0x18, A, False)
        block = engine.block_of(A)
        ent = engine.directory.entry(block)
        assert ent.sharers == {1, 2}
        assert engine.holds(1, block) and engine.holds(2, block)
        assert not engine.holds(0, block)
