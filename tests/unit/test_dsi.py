"""Unit tests for the DSI baseline (repro.dsi)."""

from repro.dsi.predictor import DSIPolicy
from repro.dsi.versioning import VersioningSelector
from repro.protocol.states import MissKind
from repro.trace.events import SyncKind


class TestVersioningSelector:
    def test_first_fetch_never_candidate(self):
        sel = VersioningSelector()
        assert not sel.observe_fetch(1, MissKind.READ_FETCH, 0)

    def test_read_refetch_same_version_not_candidate(self):
        sel = VersioningSelector()
        sel.observe_fetch(1, MissKind.READ_FETCH, 3)
        assert not sel.observe_fetch(1, MissKind.READ_FETCH, 3)

    def test_read_refetch_moved_version_is_candidate(self):
        sel = VersioningSelector()
        sel.observe_fetch(1, MissKind.READ_FETCH, 3)
        assert sel.observe_fetch(1, MissKind.READ_FETCH, 5)

    def test_write_fetch_tagged_pre_increment(self):
        """A producer's own write run moves the version past its tag,
        so its next fetch is a candidate — the em3d behaviour."""
        sel = VersioningSelector()
        sel.observe_fetch(1, MissKind.WRITE_FETCH, 3)  # tag = 3, dir -> 4
        assert sel.observe_fetch(1, MissKind.WRITE_FETCH, 4)

    def test_upgrade_never_candidate_and_tags_post_write(self):
        """The migratory exclusion: a read-modify-write owner is tagged
        with its own post-write version — the tomcatv behaviour."""
        sel = VersioningSelector()
        sel.observe_fetch(1, MissKind.READ_FETCH, 3)
        assert not sel.observe_fetch(1, MissKind.UPGRADE, 3)  # tag = 4
        # refetch after own write run only: version is 4 -> no mismatch
        assert not sel.observe_fetch(1, MissKind.READ_FETCH, 4)

    def test_none_version_ignored(self):
        sel = VersioningSelector()
        assert not sel.observe_fetch(1, MissKind.READ_FETCH, None)
        assert sel.known_blocks() == 0

    def test_candidates_counted(self):
        sel = VersioningSelector()
        sel.observe_fetch(1, MissKind.READ_FETCH, 0)
        sel.observe_fetch(1, MissKind.READ_FETCH, 2)
        assert sel.candidates_selected == 1


class TestDSIPolicy:
    def _fetch(self, dsi, block, kind, version):
        dsi.on_access(block, 0x10, True, kind, version)

    def test_no_per_access_firing(self):
        dsi = DSIPolicy()
        d = dsi.on_access(1, 0x10, True, MissKind.READ_FETCH, 0)
        assert not d.self_invalidate

    def test_bulk_self_invalidation_at_barrier(self):
        dsi = DSIPolicy()
        self._fetch(dsi, 1, MissKind.READ_FETCH, 0)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 2)  # candidate
        burst = dsi.on_sync(SyncKind.BARRIER, 1)
        assert burst == [1]

    def test_candidates_cleared_after_burst(self):
        dsi = DSIPolicy()
        self._fetch(dsi, 1, MissKind.READ_FETCH, 0)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 2)
        dsi.on_sync(SyncKind.BARRIER, 1)
        assert dsi.on_sync(SyncKind.BARRIER, 2) == []

    def test_lock_release_triggers(self):
        dsi = DSIPolicy()
        self._fetch(dsi, 1, MissKind.READ_FETCH, 0)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 2)
        assert dsi.on_sync(SyncKind.LOCK_RELEASE, 9) == [1]

    def test_lock_acquire_not_a_trigger_by_default(self):
        dsi = DSIPolicy()
        self._fetch(dsi, 1, MissKind.READ_FETCH, 0)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 2)
        assert dsi.on_sync(SyncKind.LOCK_ACQUIRE, 9) == []

    def test_upgrade_revokes_candidacy(self):
        """Taking a candidate block exclusive (spin-lock test&set, RMW
        data) removes it from the burst."""
        dsi = DSIPolicy()
        self._fetch(dsi, 1, MissKind.READ_FETCH, 0)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 2)  # candidate
        self._fetch(dsi, 1, MissKind.UPGRADE, 2)
        assert dsi.on_sync(SyncKind.BARRIER, 1) == []

    def test_external_invalidation_revokes_candidacy(self):
        dsi = DSIPolicy()
        self._fetch(dsi, 1, MissKind.READ_FETCH, 0)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 2)
        dsi.on_invalidation(1)
        assert dsi.on_sync(SyncKind.BARRIER, 1) == []

    def test_burst_is_sorted_and_counted(self):
        dsi = DSIPolicy()
        for block in (9, 3, 7):
            self._fetch(dsi, block, MissKind.READ_FETCH, 0)
            self._fetch(dsi, block, MissKind.READ_FETCH, 2)
        burst = dsi.on_sync(SyncKind.BARRIER, 1)
        assert burst == [3, 7, 9]
        assert dsi.bulk_invalidations == 3

    def test_no_feedback_adaptation(self):
        """DSI is a heuristic: premature feedback does not stop it from
        re-selecting the block (the paper's 14% misprediction rate)."""
        dsi = DSIPolicy()
        self._fetch(dsi, 1, MissKind.READ_FETCH, 0)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 2)
        dsi.on_sync(SyncKind.BARRIER, 1)
        dsi.on_premature(1)
        self._fetch(dsi, 1, MissKind.READ_FETCH, 4)
        assert dsi.on_sync(SyncKind.BARRIER, 2) == [1]
