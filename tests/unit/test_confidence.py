"""Unit tests for confidence counters (repro.core.confidence)."""

import pytest

from repro.core.confidence import ConfidenceConfig, CounterTable
from repro.errors import ConfigurationError


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ConfidenceConfig()
        assert cfg.bits == 2
        assert cfg.max_value == 3
        assert cfg.predict_threshold == 3  # saturated

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bits": 0},
            {"initial": 4},
            {"initial": -1},
            {"predict_threshold": 9},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConfidenceConfig(**kwargs)


class TestLearning:
    def test_unknown_key_not_confident(self):
        table = CounterTable(ConfidenceConfig())
        assert not table.confident("sig")

    def test_learn_inserts_at_initial(self):
        table = CounterTable(ConfidenceConfig(initial=2))
        table.learn("sig")
        assert table.value("sig") == 2

    def test_confidence_requires_saturation(self):
        table = CounterTable(ConfidenceConfig(initial=2))
        table.learn("sig")
        assert not table.confident("sig")
        table.learn("sig")
        assert table.value("sig") == 3
        assert table.confident("sig")

    def test_counter_saturates_at_max(self):
        table = CounterTable(ConfidenceConfig())
        for _ in range(10):
            table.learn("sig")
        assert table.value("sig") == 3

    def test_strengthen_equivalent_to_learn(self):
        table = CounterTable(ConfidenceConfig(initial=1))
        table.strengthen("sig")
        table.strengthen("sig")
        assert table.value("sig") == 2

    def test_len_and_contains(self):
        table = CounterTable(ConfidenceConfig())
        table.learn("a")
        table.learn("b")
        assert len(table) == 2
        assert "a" in table and "c" not in table


class TestPoisoning:
    def test_weaken_poisons_by_default(self):
        table = CounterTable(ConfidenceConfig())
        for _ in range(3):
            table.learn("sig")
        assert table.confident("sig")
        table.weaken("sig")
        assert not table.confident("sig")
        assert table.is_poisoned("sig")

    def test_poisoned_never_rearms(self):
        """The retirement behaviour implied by the paper's <=3%
        misprediction rates: no amount of confirmation re-saturates."""
        table = CounterTable(ConfidenceConfig())
        table.learn("sig")
        table.weaken("sig")
        for _ in range(20):
            table.learn("sig")
        assert not table.confident("sig")

    def test_plain_counter_can_rearm(self):
        cfg = ConfidenceConfig(poison_on_premature=False)
        table = CounterTable(cfg)
        for _ in range(3):
            table.learn("sig")
        table.weaken("sig")
        assert table.value("sig") == 2
        table.learn("sig")
        assert table.confident("sig")

    def test_weaken_unknown_key_is_noop(self):
        table = CounterTable(ConfidenceConfig(poison_on_premature=False))
        table.weaken("never-seen")
        assert "never-seen" not in table

    def test_weaken_floors_at_zero(self):
        cfg = ConfidenceConfig(poison_on_premature=False, initial=0)
        table = CounterTable(cfg)
        table.learn("sig")
        table.weaken("sig")
        table.weaken("sig")
        assert table.value("sig") == 0
