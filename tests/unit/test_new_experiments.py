"""Unit tests for the si-delay, patterns, and stability experiments."""

from repro.experiments import patterns, si_delay, stability
from repro.experiments.cli import main


class TestSiDelay:
    def test_zero_delay_matches_plain_ltp(self):
        res = si_delay.run(size="tiny", workloads=["em3d"],
                           delays=(0, 4000))
        assert res.speedup("em3d", 0) > 1.0

    def test_speedup_decays_with_delay(self):
        res = si_delay.run(size="tiny", workloads=["em3d"],
                           delays=(0, 8000))
        assert res.speedup("em3d", 8000) <= res.speedup("em3d", 0) + 1e-9

    def test_render(self):
        res = si_delay.run(size="tiny", workloads=["em3d"], delays=(0,))
        assert "fire-delay" in res.render()


class TestPatterns:
    def test_census_runs_for_all(self):
        res = patterns.run(size="tiny")
        assert len(res.censuses) == 9
        text = res.render()
        assert "producer-consumer" in text

    def test_every_workload_has_blocks(self):
        res = patterns.run(size="tiny", workloads=["em3d", "moldyn"])
        for c in res.censuses.values():
            assert c.total_blocks > 0


class TestStability:
    def test_spread_is_small(self):
        res = stability.run(size="tiny", workloads=["em3d"],
                            seeds=(1, 2, 3))
        # em3d's structure is seed-independent: spread ~ 0
        assert res.stdev("em3d") < 0.02

    def test_randomized_workload_still_stable(self):
        res = stability.run(size="tiny", workloads=["unstructured"],
                            seeds=(1, 2, 3))
        assert res.stdev("unstructured") < 0.15
        assert 0.0 < res.mean("unstructured") <= 1.0

    def test_render(self):
        res = stability.run(size="tiny", workloads=["em3d"], seeds=(1, 2))
        assert "seeds" in res.render()


class TestCLIRegistration:
    def test_new_commands_run(self, capsys):
        for cmd in ("patterns",):
            assert main([cmd, "--size", "tiny",
                         "--workloads", "em3d"]) == 0
        assert main(["si-delay", "--size", "tiny",
                     "--workloads", "em3d"]) == 0
        out = capsys.readouterr().out
        assert "fire-delay" in out
