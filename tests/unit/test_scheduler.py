"""Unit tests for the deterministic interleaver (repro.trace.scheduler)."""

import pytest

from repro.errors import SchedulingError
from repro.trace.events import MemoryAccess, SyncBoundary, SyncKind
from repro.trace.program import (
    Access,
    Barrier,
    LockAcquire,
    LockRelease,
    Program,
    ProgramSet,
)
from repro.trace.scheduler import InterleavingScheduler, interleave


def _ps(progs):
    return ProgramSet("t", len(progs), {i: p for i, p in enumerate(progs)})


def _accesses(stream):
    return [e for e in stream if isinstance(e, MemoryAccess)]


class TestBasics:
    def test_all_accesses_emitted_once(self):
        p0 = Program(0)
        p1 = Program(1)
        for i in range(5):
            p0.append(Access(0x10 + i, 0x100 * (i + 1), False))
            p1.append(Access(0x50 + i, 0x900 * (i + 1), True))
        acc = _accesses(interleave(_ps([p0, p1])))
        assert len(acc) == 10
        assert sum(1 for a in acc if a.node == 0) == 5

    def test_per_node_order_preserved(self):
        p0 = Program(0)
        for i in range(8):
            p0.append(Access(0x10 + i, 0x100, False))
        p1 = Program(1)
        p1.append(Access(0x99, 0x200, True))
        acc = _accesses(interleave(_ps([p0, p1])))
        pcs0 = [a.pc for a in acc if a.node == 0]
        assert pcs0 == [0x10 + i for i in range(8)]

    def test_round_robin_alternates(self):
        p0, p1 = Program(0), Program(1)
        for i in range(3):
            p0.append(Access(0x1, 0x100, False))
            p1.append(Access(0x2, 0x200, False))
        acc = _accesses(interleave(_ps([p0, p1])))
        assert [a.node for a in acc] == [0, 1, 0, 1, 0, 1]

    def test_quantum_groups_steps(self):
        p0, p1 = Program(0), Program(1)
        for i in range(4):
            p0.append(Access(0x1, 0x100, False))
            p1.append(Access(0x2, 0x200, False))
        acc = _accesses(interleave(_ps([p0, p1]), quantum=2))
        assert [a.node for a in acc] == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_deterministic(self):
        def build():
            p0, p1 = Program(0), Program(1)
            for i in range(6):
                p0.append(Access(0x10 + i, 0x100 + 32 * i, i % 2 == 0))
                p1.append(Access(0x60 + i, 0x100 + 32 * i, i % 3 == 0))
            p0.append(Barrier(1))
            p1.append(Barrier(1))
            return _ps([p0, p1])

        first = [(type(e).__name__, getattr(e, "pc", None), e.node)
                 for e in interleave(build())]
        second = [(type(e).__name__, getattr(e, "pc", None), e.node)
                  for e in interleave(build())]
        assert first == second

    def test_bad_quantum_rejected(self):
        with pytest.raises(SchedulingError):
            InterleavingScheduler(_ps([Program(0), Program(1)]), quantum=0)


class TestBarriers:
    def test_barrier_blocks_until_all_arrive(self):
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x1, 0x100, True))
        p0.append(Barrier(1))
        p0.append(Access(0x2, 0x100, True))
        p1.append(Access(0x3, 0x200, False))
        p1.append(Access(0x4, 0x200, False))
        p1.append(Access(0x5, 0x200, False))
        p1.append(Barrier(1))
        stream = list(interleave(_ps([p0, p1])))
        acc = _accesses(stream)
        # node 0's post-barrier access (pc 0x2) must come after all of
        # node 1's pre-barrier accesses.
        idx_post = next(i for i, a in enumerate(acc) if a.pc == 0x2)
        idx_pre = max(i for i, a in enumerate(acc) if a.pc in (0x3, 0x4, 0x5))
        assert idx_post > idx_pre

    def test_barrier_emits_sync_boundary(self):
        p0, p1 = Program(0), Program(1)
        p0.append(Barrier(7))
        p1.append(Barrier(7))
        syncs = [e for e in interleave(_ps([p0, p1]))
                 if isinstance(e, SyncBoundary)]
        assert len(syncs) == 2
        assert all(s.kind is SyncKind.BARRIER and s.sync_id == 7
                   for s in syncs)


class TestLocks:
    def _lock_ps(self, fixed_spins):
        progs = []
        for node in range(3):
            p = Program(node)
            p.append(LockAcquire(1, 0x1000, 0x10, 0x14,
                                 fixed_spins=fixed_spins))
            p.append(Access(0x20, 0x2000, True))
            p.append(LockRelease(1, 0x1000, 0x18))
            progs.append(p)
        return _ps(progs)

    def test_mutual_exclusion_fifo(self):
        stream = list(interleave(self._lock_ps(fixed_spins=1)))
        order = [e.node for e in stream
                 if isinstance(e, SyncBoundary)
                 and e.kind is SyncKind.LOCK_ACQUIRE]
        assert order == [0, 1, 2]

    def test_critical_section_serialized(self):
        stream = list(interleave(self._lock_ps(fixed_spins=1)))
        events = [e for e in stream if isinstance(e, SyncBoundary)]
        kinds = [(e.kind, e.node) for e in events]
        # acquire/release strictly alternate
        for i in range(0, len(kinds), 2):
            assert kinds[i][0] is SyncKind.LOCK_ACQUIRE
            assert kinds[i + 1][0] is SyncKind.LOCK_RELEASE
            assert kinds[i][1] == kinds[i + 1][1]

    def test_fixed_spins_constant_access_count(self):
        """fixed_spins=k -> exactly k spin reads + 1 write per acquire,
        regardless of contention (appbt's repeatable lock traces)."""
        stream = list(interleave(self._lock_ps(fixed_spins=3)))
        for node in range(3):
            spins = sum(
                1 for e in stream
                if isinstance(e, MemoryAccess)
                and e.node == node and e.pc == 0x14
            )
            assert spins == 3

    def test_variable_spins_depend_on_contention(self):
        stream = list(interleave(self._lock_ps(fixed_spins=None)))
        spin_counts = [
            sum(1 for e in stream
                if isinstance(e, MemoryAccess)
                and e.node == node and e.pc == 0x14)
            for node in range(3)
        ]
        # the first holder spins once; later holders spin more
        assert spin_counts[0] == 1
        assert spin_counts[2] >= spin_counts[0]

    def test_lock_traffic_targets_lock_block(self):
        stream = list(interleave(self._lock_ps(fixed_spins=1)))
        lock_writes = [
            e for e in stream
            if isinstance(e, MemoryAccess) and e.address == 0x1000
            and e.is_write
        ]
        # 3 test&set + 3 release writes
        assert len(lock_writes) == 6
