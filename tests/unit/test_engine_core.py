"""Unit tests for the engine registry/selection and the stall
diagnostics both cores attach to a deadlocked run."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.runner.spec import PolicySpec
from repro.timing import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINE_NAMES,
    TimingSimulator,
    engine_class,
    make_engine,
    select_engine,
    selected_engine,
)
from repro.timing import core as engine_core
from repro.timing.engine_fast import FastTimingSimulator
from repro.trace.program import (
    Access,
    LockAcquire,
    LockRelease,
    Program,
    ProgramSet,
)

CORES = (TimingSimulator, FastTimingSimulator)


@pytest.fixture
def clean_selection(monkeypatch):
    """No process-global selection, no REPRO_ENGINE in the env."""
    monkeypatch.setattr(engine_core, "_selected", None)
    monkeypatch.delenv(ENGINE_ENV, raising=False)


class TestEngineRegistry:
    def test_registered_names_resolve(self):
        assert engine_class("reference") is TimingSimulator
        assert engine_class("fast") is FastTimingSimulator
        for name in ENGINE_NAMES:
            assert engine_class(name).core_name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown timing"):
            engine_class("turbo")


class TestSelection:
    def test_default_when_nothing_selects(self, clean_selection):
        assert selected_engine() == DEFAULT_ENGINE

    def test_env_var_respected(self, clean_selection, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "reference")
        assert selected_engine() == "reference"

    def test_typod_env_var_fails_loudly(
        self, clean_selection, monkeypatch
    ):
        monkeypatch.setenv(ENGINE_ENV, "refrence")
        with pytest.raises(ConfigurationError):
            selected_engine()

    def test_select_wins_over_env_and_exports(
        self, clean_selection, monkeypatch
    ):
        import os

        monkeypatch.setenv(ENGINE_ENV, "fast")
        assert select_engine("reference") == "reference"
        assert selected_engine() == "reference"
        # exported so spawned pool workers inherit the choice
        assert os.environ[ENGINE_ENV] == "reference"

    def test_select_validates_before_committing(self, clean_selection):
        with pytest.raises(ConfigurationError):
            select_engine("turbo")
        assert selected_engine() == DEFAULT_ENGINE

    def test_make_engine_explicit_override(self, clean_selection):
        select_engine("fast")
        engine = make_engine(
            PolicySpec(name="base").build, engine="reference"
        )
        assert isinstance(engine, TimingSimulator)


def deadlocked_programs() -> ProgramSet:
    """Two nodes acquire two locks in opposite order — the classic
    deadlock. Each lock is released by its acquiring node, so
    ``validate()`` passes and the stall only surfaces at run time."""
    a = Program(0)
    a.append(LockAcquire(1, 0x2000, 0x500, 0x504))
    a.append(Access(0x510, 0x3000, True, work=50))
    a.append(LockAcquire(2, 0x2040, 0x520, 0x524))
    a.append(LockRelease(2, 0x2040, 0x528))
    a.append(LockRelease(1, 0x2000, 0x508))
    b = Program(1)
    b.append(LockAcquire(2, 0x2040, 0x540, 0x544))
    b.append(Access(0x550, 0x3040, True, work=50))
    b.append(LockAcquire(1, 0x2000, 0x560, 0x564))
    b.append(LockRelease(1, 0x2000, 0x568))
    b.append(LockRelease(2, 0x2040, 0x548))
    return ProgramSet("deadlock", 2, {0: a, 1: b})


class TestStallDiagnostics:
    @pytest.mark.parametrize("core", CORES)
    def test_deadlock_reports_time_and_node_status(self, core):
        engine = core(PolicySpec(name="base").build)
        with pytest.raises(SimulationError) as exc:
            engine.run(deadlocked_programs())
        message = str(exc.value)
        # the diagnostics must make the deadlock debuggable from the
        # exception alone: what stalled, when, and where each node was
        assert "stalled" in message
        assert "t=" in message
        assert "2 unfinished node(s)" in message
        assert "node 0:" in message and "node 1:" in message
        assert "/5" in message  # per-node step progress

    @pytest.mark.parametrize("core", CORES)
    def test_negative_delay_rejected(self, core):
        with pytest.raises(SimulationError):
            core(PolicySpec(name="base").build, si_fire_delay=-1)
