"""Tests for cache maintenance: ResultCache.stats()/prune_by(), the
`repro cache {stats,prune}` CLI, and the run-all cooperative/trace
cache flag plumbing."""

import os
import time

import pytest

from repro.experiments.cli import (
    _parse_age,
    _parse_bytes,
    _runner_from_args,
    build_parser,
    main,
)
from repro.runner import (
    ClaimStore,
    ResultCache,
    census_job,
    execute_spec,
)

SIZE = "tiny"


def _populate(cache, names=("em3d", "tomcatv")):
    specs = [census_job(name, SIZE) for name in names]
    for spec in specs:
        cache.put(spec, execute_spec(spec))
    return specs


class TestResultCacheStats:
    def test_empty(self, tmp_path):
        stats = ResultCache(tmp_path).stats()
        assert stats.entries == 0
        assert stats.total_bytes == 0
        assert stats.oldest_age == stats.newest_age == 0.0

    def test_counts_and_ages(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = _populate(cache)
        old = time.time() - 7200
        os.utime(cache.path(specs[0]), (old, old))
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.oldest_age == pytest.approx(7200, abs=60)
        assert stats.newest_age < 60

    def test_claims_do_not_count_as_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache)
        ClaimStore(tmp_path).acquire("deadbeef")
        assert cache.stats().entries == 2


class TestPruneBy:
    def test_max_age(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = _populate(cache)
        old = time.time() - 7200
        os.utime(cache.path(specs[0]), (old, old))
        assert cache.prune_by(max_age=3600) == 1
        assert not cache.get(specs[0])[0]
        assert cache.get(specs[1])[0]

    def test_max_bytes_drops_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = _populate(cache, ("em3d", "tomcatv", "moldyn"))
        now = time.time()
        for i, spec in enumerate(specs):
            stamp = now - (len(specs) - i) * 1000
            os.utime(cache.path(spec), (stamp, stamp))
        newest_size = cache.path(specs[-1]).stat().st_size
        removed = cache.prune_by(max_bytes=newest_size)
        assert removed == 2
        assert cache.get(specs[-1])[0], "newest entry must survive"

    def test_no_limits_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache)
        assert cache.prune_by() == 0
        assert cache.entries() == 2


class TestCacheCli:
    def test_stats_output(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _populate(cache)
        store = ClaimStore(tmp_path, ttl=10.0)
        store.acquire("live0000")
        stale = ClaimStore(
            tmp_path, ttl=10.0, owner=("host-x", 1),
            clock=lambda: time.time() - 3600,
        )
        stale.acquire("stale000")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "1 live, 1 stale" in out
        assert "traces" in out

    def test_prune_sweeps_age_and_stale_claims(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        specs = _populate(cache)
        old = time.time() - 7200
        os.utime(cache.path(specs[0]), (old, old))
        ClaimStore(
            tmp_path, owner=("host-x", 1),
            clock=lambda: time.time() - 3600,
        ).acquire("stale000")
        code = main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-age", "1h",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned 1 cached files" in out
        assert "swept 1 stale claims" in out
        assert cache.entries() == 1
        assert list((tmp_path / "claims").glob("*.claim")) == []

    def test_prune_respects_live_claims(self, tmp_path, capsys):
        ClaimStore(tmp_path).acquire("live0000")
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-age", "1h",
        ]) == 0
        assert len(list((tmp_path / "claims").glob("*.claim"))) == 1

    def test_prune_max_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        _populate(cache, ("em3d", "tomcatv", "moldyn"))
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-bytes", "0",
        ]) == 0
        assert cache.entries() == 0

    def test_prune_max_bytes_budget_spans_results_and_traces(
        self, tmp_path
    ):
        """--max-bytes bounds results + traces combined, not each."""
        from repro.workloads import TraceCache, cached_build, get_workload

        cache = ResultCache(tmp_path)
        _populate(cache)
        traces = TraceCache(tmp_path / "traces")
        cached_build(get_workload("em3d", SIZE), traces)
        total = (
            cache.stats().total_bytes + traces.total_bytes()
        )
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-bytes", str(total - 1),
        ]) == 0
        remaining = (
            ResultCache(tmp_path).stats().total_bytes
            + TraceCache(tmp_path / "traces").total_bytes()
        )
        assert remaining <= total - 1

    def test_stats_and_prune_honor_trace_cache_flag(
        self, tmp_path, capsys
    ):
        from repro.workloads import TraceCache, cached_build, get_workload

        custom = tmp_path / "elsewhere"
        cached_build(get_workload("em3d", SIZE), TraceCache(custom))
        assert main([
            "cache", "stats", "--cache-dir", str(tmp_path / "cache"),
            "--trace-cache", str(custom),
        ]) == 0
        assert "1 entries" in capsys.readouterr().out
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path / "cache"),
            "--max-age", "0s", "--trace-cache", str(custom),
        ]) == 0
        assert TraceCache(custom).entries() == 0


class TestParsers:
    def test_parse_age(self):
        assert _parse_age("90") == 90.0
        assert _parse_age("90s") == 90.0
        assert _parse_age("30m") == 1800.0
        assert _parse_age("36h") == 36 * 3600.0
        assert _parse_age("7d") == 7 * 86400.0

    def test_parse_bytes(self):
        assert _parse_bytes("1048576") == 1048576
        assert _parse_bytes("500K") == 500 * 1024
        assert _parse_bytes("500M") == 500 * 2**20
        assert _parse_bytes("2G") == 2 * 2**30
        assert _parse_bytes("2GiB") == 2 * 2**30


class TestRunAllFlags:
    def test_cooperative_flag_parses(self):
        args = build_parser().parse_args(
            ["run-all", "--cooperative", "--cache-dir", "/tmp/x"]
        )
        assert args.cooperative
        assert args.claim_ttl > 0

    def test_runner_from_args_wires_cooperation(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--cooperative",
            "--cache-dir", str(tmp_path), "--claim-ttl", "5",
        ])
        runner = _runner_from_args(args)
        assert runner.cooperative
        assert runner.claim_ttl == 5.0
        assert runner.cache is not None
        # run-all defaults the trace cache inside the result cache
        assert runner.trace_cache is not None
        assert runner.trace_cache.root == tmp_path / "traces"

    def test_no_cache_disables_defaulted_trace_cache(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--cache-dir", str(tmp_path), "--no-cache",
        ])
        runner = _runner_from_args(args)
        assert runner.cache is None and runner.trace_cache is None

    def test_explicit_trace_cache_survives_no_cache(self, tmp_path):
        # --no-cache disables only the *result* cache
        args = build_parser().parse_args([
            "run-all", "--cache-dir", str(tmp_path), "--no-cache",
            "--trace-cache", str(tmp_path / "t"),
        ])
        runner = _runner_from_args(args)
        assert runner.cache is None
        assert runner.trace_cache is not None
        assert runner.trace_cache.root == tmp_path / "t"

    def test_explicit_trace_cache_dir(self, tmp_path):
        args = build_parser().parse_args([
            "fig9", "--trace-cache", str(tmp_path / "t"),
        ])
        runner = _runner_from_args(args)
        assert runner.trace_cache is not None
        assert runner.trace_cache.root == tmp_path / "t"

    def test_cooperative_without_cache_is_an_error(self, capsys):
        code = main(["run-all", "--cooperative", "--no-cache"])
        assert code == 2
        assert "--cooperative requires" in capsys.readouterr().err


class TestStatsWatch:
    def test_watch_refreshes_n_times(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        _populate(cache)
        code = main([
            "cache", "stats", "--cache-dir", str(tmp_path),
            "--watch", "0.01", "--refreshes", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # one stats block (plus a timestamp header) per refresh
        assert out.count(f"cache {tmp_path}") == 3
        assert out.count("— ") >= 3
        assert out.count("2 entries") == 3

    def test_watch_defaults_off(self, tmp_path, capsys):
        code = main(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count(f"cache {tmp_path}") == 1
        assert "— " not in out  # no timestamp header without --watch

    def test_watch_surfaces_fleet_holders(self, tmp_path, capsys):
        """Live claims group by holder — the fleet view for
        cooperative peers and the remote broker's lease mirror."""
        fleet_a = ClaimStore(tmp_path, ttl=300.0, owner=("host-a", 11))
        fleet_b = ClaimStore(tmp_path, ttl=300.0, owner=("host-b", 22))
        for key in ("aa11", "bb22"):
            assert fleet_a.acquire(key)
        assert fleet_b.acquire("cc33")
        code = main([
            "cache", "stats", "--cache-dir", str(tmp_path),
            "--watch", "0.01", "--refreshes", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet    2 holder(s)" in out
        assert "host-a/11 ×2" in out
        assert "host-b/22 ×1" in out

    def test_remote_broker_lease_mirror_is_visible(self, tmp_path):
        """While a remote broker holds leases, `cache stats` sees them
        as live claims (the advisory mirror)."""
        from repro.runner import Broker, census_job
        from repro.runner.remote import _request
        import socket as socket_mod

        cache = ResultCache(tmp_path)
        specs = [census_job("em3d", SIZE), census_job("tomcatv", SIZE)]
        broker = Broker(specs, cache=cache, lease_ttl=60.0)
        address = broker.start()
        sock = socket_mod.create_connection(address)
        stream = sock.makefile("rwb")
        try:
            _request(stream, {"type": "hello", "worker": "w"})
            reply = _request(
                stream, {"type": "lease", "worker": "w", "max": 2}
            )
            assert len(reply["leases"]) == 2
            live, stale = cache.claim_store(ttl=60.0).partition()
            assert len(live) == 2
            assert {info.key for info in live} == {
                key for key, _ in reply["leases"]
            }
        finally:
            sock.close()
            broker.stop()
        # stop() released the mirror claims for the unfinished leases
        assert list((tmp_path / "claims").glob("*.claim")) == []


class TestCacheMigrateCli:
    def test_migrate_reencodes_results_and_traces(
        self, tmp_path, capsys
    ):
        from repro.codecs import blob_codec
        from repro.workloads import TraceCache, cached_build, get_workload

        cache = ResultCache(tmp_path)
        specs = _populate(cache)
        traces = TraceCache(tmp_path / "traces")
        cached_build(get_workload("em3d", SIZE), traces)

        assert main([
            "cache", "migrate", "--cache-dir", str(tmp_path),
            "--codec", "zlib",
        ]) == 0
        out = capsys.readouterr().out
        assert "2/2 entries re-encoded to zlib" in out
        assert "1/1 entries re-encoded to zlib" in out
        for spec in specs:
            assert blob_codec(cache.path(spec).read_bytes()) == "zlib"
            hit, _ = ResultCache(tmp_path).get(spec)
            assert hit
        hit, _ = TraceCache(tmp_path / "traces").get(
            get_workload("em3d", SIZE)
        )
        assert hit

    def test_migrate_back_to_none_restores_legacy_bytes(self, tmp_path):
        import pickle

        from repro.codecs import blob_codec

        cache = ResultCache(tmp_path, codec="zlib")
        specs = _populate(cache)
        assert main([
            "cache", "migrate", "--cache-dir", str(tmp_path),
            "--codec", "none",
        ]) == 0
        for spec in specs:
            blob = cache.path(spec).read_bytes()
            assert blob_codec(blob) == "none"
            assert blob.startswith(b"\x80")  # raw pickle again
            hit, value = cache.get(spec)
            assert hit
            assert pickle.dumps(
                value, pickle.HIGHEST_PROTOCOL
            ) == blob


class TestCodecFlagPlumbing:
    def test_codec_flag_wires_both_caches(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--cache-dir", str(tmp_path), "--codec", "zlib",
        ])
        runner = _runner_from_args(args)
        assert runner.cache.codec.name == "zlib"
        assert runner.trace_cache.codec.name == "zlib"

    def test_codec_defaults_to_none(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--cache-dir", str(tmp_path),
        ])
        runner = _runner_from_args(args)
        assert runner.cache.codec.name == "none"
        assert runner.trace_cache.codec.name == "none"

    def test_experiment_commands_accept_codec(self, tmp_path):
        args = build_parser().parse_args([
            "fig9", "--cache-dir", str(tmp_path), "--codec", "zlib",
        ])
        assert _runner_from_args(args).cache.codec.name == "zlib"

    def test_ship_traces_flag_builds_shipping_backend(self, tmp_path):
        args = build_parser().parse_args([
            "run-all", "--backend", "remote", "--ship-traces",
            "--codec", "zlib", "--cache-dir", str(tmp_path),
        ])
        backend = _runner_from_args(args).backend
        assert backend.name == "remote"
        assert backend.ship_traces is True
        assert backend.codec == "zlib"

    def test_ship_traces_requires_remote_backend(self, capsys):
        code = main(["run-all", "--ship-traces"])
        assert code == 2
        assert "--ship-traces requires" in capsys.readouterr().err

    def test_worker_fetch_traces_flag(self):
        args = build_parser().parse_args([
            "worker", "--connect", "127.0.0.1:1", "--no-fetch-traces",
        ])
        assert args.no_fetch_traces


class TestStatsThroughput:
    def test_stats_reports_per_holder_jobs_per_min(
        self, tmp_path, capsys
    ):
        from repro.runner import CompletionCounter

        class Clock:
            now = 1_000.0

            def __call__(self):
                return self.now

        clock = Clock()
        counter = CompletionCounter(
            tmp_path, owner=("host-a", 11), clock=clock
        )
        clock.now += 60.0
        counter.add(4)  # 4 jobs over a minute
        remote = CompletionCounter(
            tmp_path, owner=("worker-7", 0), clock=clock
        )
        clock.now += 60.0
        remote.add(6)  # broker-counted remote worker: 6 in its 60s
        assert main([
            "cache", "stats", "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "host-a/11: 4 done (4.0/min)" in out
        assert "worker-7: 6 done (6.0/min)" in out  # pid 0 elided
        # fleet-wide windowed rate rides the same line (these fake
        # counters are long idle by wall-clock, so it reads 0)
        assert "— fleet 0.0/min" in out

    def test_stats_without_counters_has_no_done_line(
        self, tmp_path, capsys
    ):
        cache = ResultCache(tmp_path)
        _populate(cache)
        assert main([
            "cache", "stats", "--cache-dir", str(tmp_path),
        ]) == 0
        assert "done" not in capsys.readouterr().out

    def test_worker_codec_flag_parses(self):
        args = build_parser().parse_args([
            "worker", "--connect", "127.0.0.1:1", "--codec", "zlib",
        ])
        assert args.codec == "zlib"


class TestPruneCounters:
    def test_prune_sweeps_stale_done_counters(self, tmp_path):
        import os as os_mod

        from repro.runner import CompletionCounter

        old = CompletionCounter(tmp_path, owner=("gone-host", 1))
        old.add(3)
        stamp = time.time() - 7200
        os_mod.utime(old.path(), (stamp, stamp))
        fresh = CompletionCounter(tmp_path, owner=("live-host", 2))
        fresh.add(1)
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-age", "1h",
        ]) == 0
        from repro.runner import completions

        remaining = completions(tmp_path)
        assert [(c.host, c.pid) for c in remaining] == [("live-host", 2)]

    def test_prune_without_max_age_keeps_counters(self, tmp_path):
        from repro.runner import CompletionCounter, completions

        CompletionCounter(tmp_path, owner=("host-a", 1)).add(1)
        assert main([
            "cache", "prune", "--cache-dir", str(tmp_path),
        ]) == 0
        assert len(completions(tmp_path)) == 1


class TestCodecBreakdown:
    """`cache stats` per-entry codec census (count + bytes/codec)."""

    def test_codec_census_buckets_mixed_entries(self, tmp_path):
        from repro.codecs import codec_census

        raw = ResultCache(tmp_path, codec="none")
        packed = ResultCache(tmp_path, codec="zlib")
        raw.put(census_job("em3d", SIZE), {"x": 1})
        packed.put(census_job("tomcatv", SIZE), {"y": 2})
        census = codec_census(raw.entry_paths())
        assert set(census) == {"none", "zlib"}
        assert census["none"][0] == 1
        assert census["zlib"][0] == 1
        total = sum(size for _, size in census.values())
        assert total == sum(
            p.stat().st_size for p in raw.entry_paths()
        )

    def test_codec_census_flags_torn_headers(self, tmp_path):
        from repro.codecs import BLOB_MAGIC, codec_census

        path = tmp_path / "ab" / "torn.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(BLOB_MAGIC)  # magic with no codec name
        census = codec_census([path])
        assert census == {"corrupt": (1, len(BLOB_MAGIC))}

    def test_codec_census_empty(self, tmp_path):
        from repro.codecs import codec_census

        assert codec_census(ResultCache(tmp_path).entry_paths()) == {}

    def test_stats_cli_shows_codec_breakdown(self, tmp_path, capsys):
        from repro.workloads import TraceCache, get_workload

        cache = ResultCache(tmp_path, codec="zlib")
        _populate(cache, names=("em3d",))
        ResultCache(tmp_path, codec="none").put(
            census_job("tomcatv", SIZE), {"z": 3}
        )
        traces = TraceCache(tmp_path / "traces", codec="zlib")
        workload = get_workload("em3d", SIZE)
        traces.put(workload, workload.build())
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        results_line = next(
            line for line in out.splitlines() if "results" in line
        )
        assert "zlib: 1" in results_line
        assert "none: 1" in results_line
        traces_line = next(
            line for line in out.splitlines() if "traces" in line
        )
        assert "zlib: 1" in traces_line

    def test_stats_cli_shows_fleet_status_file(self, tmp_path, capsys):
        import json as json_mod

        from repro.fleet import FLEET_STATUS_NAME

        claims = tmp_path / "claims"
        claims.mkdir(parents=True)
        (claims / FLEET_STATUS_NAME).write_text(json_mod.dumps({
            "updated": time.time(),
            "live": 2,
            "desired": 3,
            "queue_depth": 9,
            "throughput": 12.0,
            "policy": "queue",
            "halted": False,
            "events": [{
                "when": time.time(), "action": "up", "live": 0,
                "desired": 2, "queue_depth": 9, "throughput": 0.0,
                "reason": "queue=9",
            }],
        }))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 live / 3 desired workers" in out
        assert "up" in out

    def test_stats_cli_ignores_corrupt_fleet_file(
        self, tmp_path, capsys
    ):
        from repro.fleet import FLEET_STATUS_NAME

        claims = tmp_path / "claims"
        claims.mkdir(parents=True)
        (claims / FLEET_STATUS_NAME).write_text("{not json")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "desired" not in capsys.readouterr().out

    def test_stats_cli_ignores_oddly_typed_fleet_file(
        self, tmp_path, capsys
    ):
        """Valid JSON with wrong-typed fields (torn write recovered
        by hand, foreign writer) must degrade silently, not crash
        the stats command."""
        import json as json_mod

        from repro.fleet import FLEET_STATUS_NAME

        claims = tmp_path / "claims"
        claims.mkdir(parents=True)
        path = claims / FLEET_STATUS_NAME
        path.write_text(json_mod.dumps({
            "live": 1, "desired": 2, "updated": None,
        }))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "desired" not in capsys.readouterr().out
        # events of the wrong shape are dropped, the summary survives
        path.write_text(json_mod.dumps({
            "live": 1, "desired": 2, "updated": time.time(),
            "events": {"oops": 1},
        }))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "1 live / 2 desired" in capsys.readouterr().out
