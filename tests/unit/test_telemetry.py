"""Unit tests for the telemetry layer: registry, sinks, spans, text.

The load-bearing properties:

* the registry survives a multi-thread hammer with a concurrent
  scraper — every snapshot a scraper takes is internally consistent
  (counters only ever grow between snapshots) and the final totals
  are exact;
* the Prometheus rendering is byte-stable (golden test) — it is the
  scrape contract external collectors parse;
* disabled telemetry is a no-op that allocates no series;
* rotated JSONL logs read back in write order across segments, and
  torn lines degrade to skipped records, never exceptions;
* span records carry the documented schema and stitch parent/trace
  ids through nesting and ``bind_trace``.
"""

import json
import math
import threading

import pytest

import repro.telemetry as tm
from repro.telemetry.exposition import render_prometheus
from repro.telemetry.metrics import MetricsRegistry, parse_label_key
from repro.telemetry.sink import RotatingJsonlWriter, read_jsonl, rotated_segments
from repro.telemetry.top import (
    histogram_quantile,
    metric_total,
    parse_prometheus,
    render_screen,
)


@pytest.fixture(autouse=True)
def _telemetry_on():
    """Each test runs with collection on and no span sink leaking."""
    was = tm.enabled()
    tm.set_enabled(True)
    yield
    tm.set_enabled(was)
    tm.shutdown()


class TestRegistryConcurrency:
    THREADS = 8
    INCREMENTS = 2000

    def test_hammer_with_concurrent_scraper_is_exact_and_monotone(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_test_total")
        hist = reg.histogram("repro_test_seconds", buckets=(0.5, 1.0))
        stop = threading.Event()
        monotone_failures = []
        snapshots = []

        def hammer(tid: int):
            for i in range(self.INCREMENTS):
                counter.inc(worker=f"w-{tid}")
                counter.inc(2)
                hist.observe(i % 3 * 0.5)

        def scrape():
            last = {}
            while not stop.is_set():
                snap = reg.snapshot()
                snapshots.append(snap)
                for name, series in snap["counters"].items():
                    for key, value in series.items():
                        prev = last.get((name, key), 0)
                        if value < prev:
                            monotone_failures.append(
                                (name, key, prev, value)
                            )
                        last[(name, key)] = value
                # histogram count must equal the bucket-count sum in
                # every snapshot — a torn read would break this
                for series in snap["histograms"].values():
                    for data in series.values():
                        assert data["count"] == sum(data["counts"])

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(self.THREADS)
        ]
        scraper = threading.Thread(target=scrape)
        scraper.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        scraper.join()

        assert not monotone_failures
        assert len(snapshots) > 0
        assert counter.value() == self.THREADS * self.INCREMENTS * 2
        for tid in range(self.THREADS):
            assert counter.value(worker=f"w-{tid}") == self.INCREMENTS
        total = sum(
            data["count"]
            for data in hist.collect().values()
        )
        assert total == self.THREADS * self.INCREMENTS

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_thing_total")

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")


class TestDisabled:
    def test_disabled_mutators_record_nothing(self):
        tm.set_enabled(False)
        reg = MetricsRegistry()
        reg.counter("c_total").inc(5, worker="w")
        reg.gauge("g").set(3)
        reg.histogram("h_seconds").observe(0.2)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_disabled_span_emits_nothing(self, tmp_path):
        tm.configure(tmp_path / "telemetry")
        tm.set_enabled(False)
        with tm.span("op"):
            pass
        assert list(tm.read_spans(tmp_path / "telemetry")) == []


class TestPrometheusGolden:
    def test_rendering_is_byte_stable(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_demo_total")
        c.inc(3, kind="a")
        c.inc(2)
        reg.gauge("repro_queue_depth").set(7)
        h = reg.histogram("repro_wait_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        worker = MetricsRegistry()
        worker.counter("repro_worker_executed_total").inc(
            4, outcome="ok"
        )
        text = render_prometheus(
            reg.snapshot(), {"w-1": worker.snapshot()}
        )
        assert text == (
            "# TYPE repro_demo_total counter\n"
            "repro_demo_total 2\n"
            'repro_demo_total{kind="a"} 3\n'
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 7\n"
            "# TYPE repro_wait_seconds histogram\n"
            'repro_wait_seconds_bucket{le="0.1"} 1\n'
            'repro_wait_seconds_bucket{le="1"} 2\n'
            'repro_wait_seconds_bucket{le="+Inf"} 3\n'
            "repro_wait_seconds_sum 5.55\n"
            "repro_wait_seconds_count 3\n"
            "# TYPE repro_worker_executed_total counter\n"
            'repro_worker_executed_total{outcome="ok",worker="w-1"} 4\n'
        )

    def test_label_escaping_round_trips_through_top_parser(self):
        reg = MetricsRegistry()
        reg.counter("weird_total").inc(1, path='a"b\\c\nd')
        text = render_prometheus(reg.snapshot())
        parsed = parse_prometheus(text)
        (labels, value), = parsed["weird_total"]
        assert dict(labels) == {"path": 'a"b\\c\nd'}
        assert value == 1

    def test_label_key_round_trips(self):
        assert parse_label_key("a=1,b=x") == {"a": "1", "b": "x"}
        assert parse_label_key("") == {}


class TestTopConsumer:
    def test_histogram_quantile_merges_label_sets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0, 10.0))
        for worker in ("w-1", "w-2"):
            h.observe(0.05, worker=worker)
            h.observe(5.0, worker=worker)
        samples = parse_prometheus(render_prometheus(reg.snapshot()))
        assert histogram_quantile(samples, "lat_seconds", 0.5) == 0.1
        assert histogram_quantile(samples, "lat_seconds", 0.99) == 10.0
        assert histogram_quantile(samples, "missing", 0.5) is None
        assert metric_total(samples, "lat_seconds_count") == 4

    def test_render_screen_survives_minimal_documents(self):
        frame = render_screen({}, {})
        assert "broker:" in frame
        frame = render_screen(
            {
                "queue_depth": 2,
                "workers": {
                    "w-1": {
                        "age_s": 0.5, "rtt_s": 0.01,
                        "keys": 1, "live": True, "draining": False,
                    }
                },
                "fleet": {"policy": "queue", "halted": True},
            },
            {},
        )
        assert "AUTOSCALER HALTED" in frame
        assert "w-1" in frame


class TestRotatingSink:
    def test_rotation_keeps_order_and_caps_segments(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = RotatingJsonlWriter(path, max_bytes=120, backups=2)
        for i in range(40):
            writer.write({"i": i})
        segments = rotated_segments(path)
        assert segments[-1] == path
        assert len(segments) <= 3
        values = [r["i"] for r in read_jsonl(path)]
        # a contiguous, ordered suffix of what was written
        assert values == sorted(values)
        assert values[-1] == 39
        assert values == list(range(values[0], 40))

    def test_torn_and_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"ok": 1}\nnot json\n{"torn": \n{"ok": 2}\n[1,2]\n'
        )
        assert list(read_jsonl(path)) == [{"ok": 1}, {"ok": 2}]

    def test_write_errors_are_swallowed(self, tmp_path):
        writer = RotatingJsonlWriter(tmp_path / "dir-as-file")
        (tmp_path / "dir-as-file").mkdir()
        writer.write({"x": 1})  # must not raise


class TestSpans:
    def test_span_schema_and_nesting(self, tmp_path):
        tm.configure(tmp_path / "telemetry")
        with tm.span("outer", workload="em3d"):
            with tm.span("inner"):
                pass
        records = list(tm.read_spans(tmp_path / "telemetry"))
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        for record in records:
            assert record["schema"] == tm.SPAN_SCHEMA
            assert record["dur_ms"] >= 0
            assert record["pid"] > 0
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]
        assert outer["parent"] == ""
        assert outer["attrs"] == {"workload": "em3d"}

    def test_bind_trace_adopts_wire_id(self, tmp_path):
        tm.configure(tmp_path / "telemetry")
        with tm.bind_trace("feedbeef12345678"):
            with tm.span("worker.execute"):
                pass
        (record,) = tm.read_spans(tmp_path / "telemetry")
        assert record["trace"] == "feedbeef12345678"
        # a None trace id binds nothing (old brokers send none)
        with tm.bind_trace(None):
            assert tm.current_trace_id() is None

    def test_span_records_error_and_reraises(self, tmp_path):
        tm.configure(tmp_path / "telemetry")
        with pytest.raises(RuntimeError):
            with tm.span("boom"):
                raise RuntimeError("no")
        (record,) = tm.read_spans(tmp_path / "telemetry")
        assert record["error"] == "RuntimeError"

    def test_no_sink_means_no_emission(self):
        with tm.span("op") as attrs:
            attrs["extra"] = 1  # must not raise without a sink

    def test_configure_sets_env_for_forked_children(
        self, tmp_path, monkeypatch
    ):
        import os

        monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
        directory = tm.configure(tmp_path / "telemetry")
        assert os.environ["REPRO_TELEMETRY_DIR"] == str(directory)
        tm.shutdown()
        assert "REPRO_TELEMETRY_DIR" not in os.environ


class TestResultPathIsolation:
    def test_reports_byte_identical_telemetry_on_and_off(
        self, tmp_path
    ):
        """Telemetry must stay off the result byte-path: the same
        spec executes to pickle-identical reports with collection on
        (spans configured and all) and fully disabled."""
        import pickle

        from repro.runner import PolicySpec, timing_job
        from repro.runner.runner import execute_spec

        spec = timing_job("em3d", "tiny", PolicySpec(name="ltp"))
        tm.configure(tmp_path / "telemetry")
        tm.set_enabled(True)
        with_telemetry = pickle.dumps(execute_spec(spec))
        tm.set_enabled(False)
        without = pickle.dumps(execute_spec(spec))
        assert with_telemetry == without
        # and the instrumented run really did record something
        tm.set_enabled(True)
        assert list(tm.read_spans(tmp_path / "telemetry"))


class TestFleetEventLogReaders:
    def test_load_fleet_reads_rotated_segments_in_order(self, tmp_path):
        from repro.runner.claims import CLAIMS_DIRNAME
        from repro.store.report import load_fleet

        claims = tmp_path / CLAIMS_DIRNAME
        claims.mkdir()
        writer = RotatingJsonlWriter(
            claims / "fleet_events.jsonl", max_bytes=300, backups=3
        )
        for i in range(30):
            writer.write({
                "when": float(i), "action": "up", "live": i,
                "desired": i, "queue_depth": 0, "throughput": 0.0,
                "reason": "grow",
            })
        fleet = load_fleet(tmp_path)
        whens = [event["when"] for event in fleet["events"]]
        assert whens == sorted(whens)
        assert whens[-1] == 29.0
        assert len(rotated_segments(claims / "fleet_events.jsonl")) > 1
