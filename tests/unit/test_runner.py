"""Tests for the runner subsystem: spec identity, the content-addressed
cache (hits, misses, salt invalidation, corruption), and serial/parallel
determinism."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure9, table4, traffic
from repro.runner import (
    JobSpec,
    PolicySpec,
    ResultCache,
    Runner,
    accuracy_job,
    census_job,
    execute_spec,
    oracle_job,
    timing_job,
)

WORKLOAD = "em3d"
SIZE = "tiny"


def _grid():
    return [
        timing_job(WORKLOAD, SIZE, PolicySpec(name=p))
        for p in ("base", "dsi", "ltp")
    ] + [
        accuracy_job(WORKLOAD, SIZE, PolicySpec(name="ltp", bits=13)),
        census_job(WORKLOAD, SIZE),
    ]


class TestJobSpec:
    def test_equal_specs_hash_equal(self):
        a = timing_job(WORKLOAD, SIZE, PolicySpec(name="ltp"))
        b = timing_job(WORKLOAD, SIZE, PolicySpec(name="ltp"))
        assert a == b and hash(a) == hash(b)
        assert a.canonical() == b.canonical()

    def test_dict_overrides_normalise(self):
        a = accuracy_job(
            WORKLOAD, SIZE, PolicySpec(name="ltp"),
            overrides={"seed": 7},
        )
        b = accuracy_job(
            WORKLOAD, SIZE, PolicySpec(name="ltp"),
            overrides=(("seed", 7),),
        )
        assert a == b

    def test_confidence_normalises(self):
        a = PolicySpec(
            name="ltp",
            confidence={"initial": 2, "predict_threshold": 2},
        )
        b = PolicySpec(
            name="ltp",
            confidence=(("predict_threshold", 2), ("initial", 2)),
        )
        assert a == b

    def test_knobs_change_identity(self):
        base = timing_job(WORKLOAD, SIZE, PolicySpec(name="ltp"))
        assert base != timing_job(
            WORKLOAD, SIZE, PolicySpec(name="ltp"), si_fire_delay=500
        )
        assert base != timing_job(
            WORKLOAD, SIZE, PolicySpec(name="ltp"), forwarding=True
        )
        assert base != timing_job(
            WORKLOAD, SIZE, PolicySpec(name="ltp"), variant="downgrade"
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec(kind="nonsense", workload=WORKLOAD)
        with pytest.raises(ConfigurationError):
            PolicySpec(name="magic")
        with pytest.raises(ConfigurationError):
            timing_job(WORKLOAD, SIZE, PolicySpec(name="ltp"),
                       variant="sideways")
        with pytest.raises(ConfigurationError):
            Runner(jobs=0)

    def test_specs_pickle(self):
        for spec in _grid():
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestExecuteSpec:
    def test_kinds_produce_expected_reports(self):
        timing = execute_spec(
            timing_job(WORKLOAD, SIZE, PolicySpec(name="ltp"))
        )
        assert timing.execution_cycles > 0
        accuracy = execute_spec(
            accuracy_job(WORKLOAD, SIZE, PolicySpec(name="ltp"))
        )
        assert accuracy.total_invalidations > 0
        oracle = execute_spec(oracle_job(WORKLOAD, SIZE))
        assert (
            oracle.predicted_fraction >= accuracy.predicted_fraction
        )
        census = execute_spec(census_job(WORKLOAD, SIZE))
        assert census.total_blocks > 0


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = census_job(WORKLOAD, SIZE)
        assert cache.get(spec) == (False, None)
        value = execute_spec(spec)
        cache.put(spec, value)
        hit, loaded = cache.get(spec)
        assert hit
        assert pickle.dumps(loaded) == pickle.dumps(value)
        assert cache.entries() == 1

    def test_version_salt_invalidates(self, tmp_path):
        spec = census_job(WORKLOAD, SIZE)
        old = ResultCache(tmp_path, salt="v-old")
        old.put(spec, execute_spec(spec))
        assert old.get(spec)[0]
        new = ResultCache(tmp_path, salt="v-new")
        assert new.get(spec) == (False, None)
        assert new.key(spec) != old.key(spec)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = census_job(WORKLOAD, SIZE)
        cache.put(spec, execute_spec(spec))
        cache.path(spec).write_bytes(b"not a pickle")
        assert cache.get(spec) == (False, None)
        assert not cache.path(spec).exists()

    def test_prune(self, tmp_path):
        cache = ResultCache(tmp_path)
        keep = census_job(WORKLOAD, SIZE)
        drop = census_job("tomcatv", SIZE)
        cache.put(keep, execute_spec(keep))
        cache.put(drop, execute_spec(drop))
        assert cache.prune([keep]) == 1
        assert cache.get(keep)[0]
        assert not cache.get(drop)[0]


class TestRunner:
    def test_duplicates_execute_once(self):
        runner = Runner()
        spec = census_job(WORKLOAD, SIZE)
        results = runner.run([spec, spec, spec])
        assert results[spec].total_blocks > 0
        assert runner.stats.requested == 3
        assert runner.stats.executed == 1

    def test_memo_spans_run_calls(self):
        runner = Runner()
        spec = census_job(WORKLOAD, SIZE)
        runner.run([spec])
        runner.run([spec])
        assert runner.stats.executed == 1
        assert runner.stats.memo_hits == 1

    def test_cache_round_trip(self, tmp_path):
        grid = _grid()
        first = Runner(cache=ResultCache(tmp_path))
        out1 = first.run(grid)
        assert first.stats.executed == len(grid)
        second = Runner(cache=ResultCache(tmp_path))
        out2 = second.run(grid)
        assert second.stats.executed == 0
        assert second.stats.cache_hits == len(grid)
        assert second.stats.cache_fraction == 1.0
        for spec in grid:
            assert pickle.dumps(out1[spec]) == pickle.dumps(out2[spec])

    def test_parallel_matches_serial_byte_for_byte(self):
        grid = _grid()
        serial = Runner(jobs=1).run(grid)
        parallel = Runner(jobs=2).run(grid)
        for spec in grid:
            assert (
                pickle.dumps(serial[spec]) == pickle.dumps(parallel[spec])
            ), f"serial/parallel divergence for {spec.label()}"

    def test_progress_callback_sees_every_job(self, tmp_path):
        seen = []
        runner = Runner(
            cache=ResultCache(tmp_path),
            progress=lambda done, total, spec, source: seen.append(
                (done, total, source)
            ),
        )
        grid = _grid()
        runner.run(grid)
        assert [s[0] for s in seen] == list(range(1, len(grid) + 1))
        assert all(s[1] == len(grid) for s in seen)
        assert all(s[2] == "run" for s in seen)
        seen.clear()
        runner.run(grid)
        assert all(s[2] == "memo" for s in seen)


class TestCrossExperimentDedup:
    def test_figure9_table4_traffic_share_runs(self):
        runner = Runner()
        figure9.run(size=SIZE, workloads=[WORKLOAD], runner=runner)
        table4.run(size=SIZE, workloads=[WORKLOAD], runner=runner)
        traffic.run(size=SIZE, workloads=[WORKLOAD], runner=runner)
        # three experiments, one identical 3-policy timing grid
        assert runner.stats.executed == 3
        assert runner.stats.requested == 9
