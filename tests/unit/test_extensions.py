"""Unit tests for the extension features: protocol variants, finite
tables, consumer-prediction forwarding, trace IO, and export."""

import io

import pytest

from repro.core import NullPolicy, PerBlockLTP
from repro.core.confidence import ConfidenceConfig, CounterTable
from repro.core.ltp import GlobalLTP
from repro.errors import ConfigurationError
from repro.ext.sharing import ConsumerPredictor, ForwardingStats
from repro.protocol.coherence import CoherenceEngine
from repro.protocol.states import CacheState, DirState, ProtocolVariant
from repro.sim import AccuracySimulator
from repro.timing import TimingSimulator
from repro.trace.io import load_stream, parse_stream, save_stream
from repro.trace.scheduler import interleave
from tests.conftest import producer_consumer

FAST = ConfidenceConfig(initial=3, predict_threshold=3)
A = 0x1000


class TestDowngradeVariantFunctional:
    def test_read_downgrades_writer(self):
        engine = CoherenceEngine(3, variant=ProtocolVariant.DOWNGRADE)
        engine.access(0, 0x10, A, True)
        res = engine.access(1, 0x20, A, False)
        # no invalidation: the writer keeps a read-only copy
        assert res.invalidations == []
        block = engine.block_of(A)
        assert engine.caches.lookup(0, block) is CacheState.SHARED
        ent = engine.directory.entry(block)
        assert ent.state is DirState.SHARED
        assert ent.sharers == {0, 1}
        assert engine.downgrades == 1

    def test_writer_read_hits_after_downgrade(self):
        engine = CoherenceEngine(2, variant=ProtocolVariant.DOWNGRADE)
        engine.access(0, 0x10, A, True)
        engine.access(1, 0x20, A, False)
        assert engine.access(0, 0x14, A, False).hit

    def test_writer_rewrite_is_upgrade(self):
        engine = CoherenceEngine(2, variant=ProtocolVariant.DOWNGRADE)
        engine.access(0, 0x10, A, True)
        engine.access(1, 0x20, A, False)
        res = engine.access(0, 0x14, A, True)
        from repro.protocol.states import MissKind

        assert res.miss_kind is MissKind.UPGRADE
        assert [i.node for i in res.invalidations] == [1]

    def test_fewer_invalidations_than_invalidate_variant(self):
        ps = producer_consumer(iterations=20)
        inv = AccuracySimulator(
            lambda n: NullPolicy(), variant=ProtocolVariant.INVALIDATE
        ).run(ps)
        down = AccuracySimulator(
            lambda n: NullPolicy(), variant=ProtocolVariant.DOWNGRADE
        ).run(ps)
        assert down.total_invalidations < inv.total_invalidations


class TestDowngradeVariantTiming:
    def test_timing_run_completes_and_is_cheaper(self):
        ps = producer_consumer(iterations=15)
        inv = TimingSimulator(
            lambda n: NullPolicy(), variant=ProtocolVariant.INVALIDATE
        ).run(ps)
        down = TimingSimulator(
            lambda n: NullPolicy(), variant=ProtocolVariant.DOWNGRADE
        ).run(ps)
        # the producer re-writes via 2-hop upgrade instead of 3-hop
        # fetch; consumers are unchanged
        assert down.external_invalidations < inv.external_invalidations


class TestFiniteTables:
    def test_counter_table_capacity_evicts_lru(self):
        table = CounterTable(ConfidenceConfig(), max_entries=2)
        table.learn("a")
        table.learn("b")
        table.learn("a")  # refresh a
        table.learn("c")  # evicts b
        assert "b" not in table
        assert "a" in table and "c" in table
        assert table.evictions == 1

    def test_poison_evicted_with_entry(self):
        table = CounterTable(ConfidenceConfig(), max_entries=1)
        table.learn("a")
        table.weaken("a")
        assert table.is_poisoned("a")
        table.learn("b")  # evicts a, clearing its poison
        table.learn("a")
        assert not table.is_poisoned("a")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            CounterTable(ConfidenceConfig(), max_entries=0)

    def test_per_block_entry_cap_thrashes_multi_signature_blocks(self):
        """A block alternating between two traces needs two entries; a
        1-entry table forgets one each time."""
        from tests.unit.test_ltp import drive_trace

        capped = PerBlockLTP(confidence=FAST, entries_per_block=1)
        full = PerBlockLTP(confidence=FAST)
        traces = [[0x10, 0x24], [0x38]]
        hits_capped = hits_full = 0
        for i in range(10):
            trace = traces[i % 2]
            if drive_trace(capped, 1, trace) is not None:
                hits_capped += 1
            if drive_trace(full, 1, trace) is not None:
                hits_full += 1
        assert hits_full > hits_capped

    def test_max_blocks_evicts_block_tables(self):
        from tests.unit.test_ltp import drive_trace

        ltp = PerBlockLTP(confidence=FAST, max_blocks=2)
        for block in (1, 2, 3):
            drive_trace(ltp, block, [0x10 * block])
        assert ltp.block_evictions == 1
        # block 1 was evicted: no prediction for it anymore
        assert drive_trace(ltp, 1, [0x10]) is None

    def test_global_table_capacity(self):
        from tests.unit.test_ltp import drive_trace

        ltp = GlobalLTP(confidence=FAST, max_entries=1)
        drive_trace(ltp, 1, [0x10])
        drive_trace(ltp, 2, [0x24])  # evicts the first signature
        assert drive_trace(ltp, 1, [0x10]) is None


class TestConsumerPredictor:
    def test_learns_followers(self):
        pred = ConsumerPredictor()
        pred.observe_request(5, 0)
        pred.observe_request(5, 1)
        pred.observe_request(5, 0)
        assert pred.predict_consumer(5, 0) == 1
        assert pred.predict_consumer(5, 1) == 0

    def test_unknown_returns_none(self):
        pred = ConsumerPredictor()
        assert pred.predict_consumer(5, 0) is None
        pred.observe_request(5, 0)
        assert pred.predict_consumer(5, 0) is None

    def test_repeat_requests_ignored(self):
        pred = ConsumerPredictor()
        pred.observe_request(5, 0)
        pred.observe_request(5, 0)
        assert pred.predict_consumer(5, 0) is None

    def test_stats_usefulness(self):
        stats = ForwardingStats(forwards=10, useful=6, wasted=2)
        assert stats.usefulness == 0.75
        assert ForwardingStats().usefulness == 0.0


def _wide_producer_consumer(iterations=15, blocks=8):
    """Producer writes a batch of blocks; the consumer walks them in
    order, so self-invalidations of later blocks are applied while the
    consumer is still misses away — the window forwarding exploits.
    (With a single block the consumer's request is in flight before the
    SI is even serviced, and the engine correctly suppresses the
    redundant forward.)"""
    from repro.trace.program import Access, Barrier, Program, ProgramSet

    p0, p1 = Program(0), Program(1)
    bid = 0
    for _ in range(iterations):
        for b in range(blocks):
            p0.append(Access(0x100 + 4 * b, 0x1000 + 32 * b, True))
        bid += 1
        p0.append(Barrier(bid))
        p1.append(Barrier(bid))
        for b in range(blocks):
            p1.append(Access(0x200 + 4 * b, 0x1000 + 32 * b, False))
        bid += 1
        p0.append(Barrier(bid))
        p1.append(Barrier(bid))
    return ProgramSet("wide-pc", 2, {0: p0, 1: p1})


class TestForwardingTiming:
    def test_forwarding_turns_misses_into_hits(self):
        ps = _wide_producer_consumer()
        plain = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST)
        ).run(ps)
        fwd = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), forwarding=True
        ).run(ps)
        assert fwd.forwarding is not None
        assert fwd.forwarding.forwards > 0
        assert fwd.forwarding.useful > 0
        assert fwd.hits > plain.hits
        assert fwd.execution_cycles < plain.execution_cycles

    def test_redundant_forwards_suppressed_under_tight_race(self):
        """Single-block ping-pong: the consumer's request is always in
        flight before the SI applies; the engine must not push copies
        at nodes already fetching them."""
        ps = producer_consumer(iterations=10)
        rep = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), forwarding=True
        ).run(ps)
        assert rep.forwarding.forwards <= 2

    def test_forwarding_disabled_by_default(self):
        ps = producer_consumer(iterations=5)
        rep = TimingSimulator(lambda n: PerBlockLTP()).run(ps)
        assert rep.forwarding is None

    def test_forward_accounting_identity(self):
        ps = _wide_producer_consumer()
        rep = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), forwarding=True
        ).run(ps)
        f = rep.forwarding
        assert f.useful + f.wasted <= f.forwards


class TestTraceIO:
    def test_roundtrip(self):
        ps = producer_consumer(iterations=4)
        buf = io.StringIO()
        written = save_stream(interleave(ps), buf, ps.num_nodes)
        assert written > 0
        num_nodes, events = parse_stream(buf.getvalue())
        assert num_nodes == ps.num_nodes
        replayed = list(events)
        original = list(interleave(ps))
        assert len(replayed) == len(original)
        for a, b in zip(replayed, original):
            assert type(a) is type(b)
            assert a.node == b.node

    def test_replay_through_simulator_matches_live_run(self):
        ps = producer_consumer(iterations=10)
        buf = io.StringIO()
        save_stream(interleave(ps), buf, ps.num_nodes)
        num_nodes, events = parse_stream(buf.getvalue())
        live = AccuracySimulator(lambda n: PerBlockLTP()).run(ps)
        replay = AccuracySimulator(lambda n: PerBlockLTP()).run_stream(
            events, num_nodes, name="replay"
        )
        assert replay.predicted == live.predicted
        assert replay.not_predicted == live.not_predicted
        assert replay.mispredicted == live.mispredicted

    def test_file_roundtrip(self, tmp_path):
        ps = producer_consumer(iterations=3)
        path = tmp_path / "trace.txt"
        save_stream(interleave(ps), path, ps.num_nodes)
        num_nodes, events = load_stream(path)
        assert num_nodes == 2
        assert len(list(events)) > 0

    def test_bad_line_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_stream("A 0 zz 100 R\n")
        with pytest.raises(ConfigurationError):
            parse_stream("X what\n")

    def test_comments_and_blanks_ignored(self):
        num_nodes, events = parse_stream(
            "#nodes 3\n\n# a comment\nA 2 10 40 W\n"
        )
        assert num_nodes == 3
        evs = list(events)
        assert len(evs) == 1 and evs[0].is_write

    def test_nodes_inferred_without_header(self):
        num_nodes, events = parse_stream("A 4 10 40 R\n")
        assert num_nodes == 5


class TestExport:
    def test_accuracy_rows_csv(self):
        from repro.analysis.export import (
            accuracy_rows,
            rows_to_csv,
            rows_to_json,
        )

        ps = producer_consumer(iterations=5)
        rep = AccuracySimulator(lambda n: PerBlockLTP()).run(ps)
        rows = accuracy_rows({"pc": {"ltp": rep}})
        assert rows[0]["workload"] == "pc"
        csv_text = rows_to_csv(rows)
        assert "predicted" in csv_text.splitlines()[0]
        import json

        parsed = json.loads(rows_to_json(rows))
        assert parsed[0]["policy"] == "ltp"

    def test_timing_rows_have_speedup(self):
        from repro.analysis.export import rows_to_csv, timing_rows

        ps = producer_consumer(iterations=5)
        base = TimingSimulator(lambda n: NullPolicy()).run(ps)
        ltp = TimingSimulator(lambda n: PerBlockLTP()).run(ps)
        rows = timing_rows({"pc": {"base": base, "ltp": ltp}})
        by_policy = {r["policy"]: r for r in rows}
        assert by_policy["base"]["speedup"] == 1.0
        assert rows_to_csv(rows)

    def test_export_result_dispatch(self):
        from repro.analysis.export import export_result
        from repro.experiments import figure6

        res = figure6.run(size="tiny", workloads=["em3d"])
        rows = export_result(res)
        assert any(r["policy"] == "ltp" for r in rows)

    def test_export_unsupported_raises(self):
        from repro.analysis.export import export_result

        with pytest.raises(TypeError):
            export_result(object())
