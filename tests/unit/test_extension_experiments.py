"""Unit tests for the extension experiment modules and CLI export."""

import json

from repro.experiments import forwarding, protocol_variants, traffic
from repro.experiments.cli import main


class TestForwardingExperiment:
    def test_runs_and_renders(self):
        res = forwarding.run(size="tiny", workloads=["em3d"])
        text = res.render()
        assert "em3d" in text and "Forwarding" in text

    def test_forwarding_helps_static_sharing(self):
        res = forwarding.run(size="tiny", workloads=["em3d"])
        assert res.speedup("em3d", "ltp+forward") >= \
            res.speedup("em3d", "ltp") - 0.02
        stats = res.reports["em3d"]["ltp+forward"].forwarding
        assert stats.forwards > 0
        assert stats.usefulness > 0.5


class TestVariantExperiment:
    def test_runs_and_renders(self):
        res = protocol_variants.run(size="tiny", workloads=["em3d"])
        assert "downgrade" in res.render().lower() or "down" in \
            res.render()

    def test_downgrade_reduces_invalidations(self):
        res = protocol_variants.run(size="tiny", workloads=["em3d"])
        row = res.rows["em3d"]
        assert row.invals_downgrade < row.invals_invalidate


class TestTrafficExperiment:
    def test_ltp_reduces_invalidation_messages(self):
        res = traffic.run(size="tiny", workloads=["em3d"])
        assert res.invalidation_reduction("em3d", "ltp") > 0.4
        assert "reduction" in res.render()


class TestCLIExport:
    def test_csv_and_json_written(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        rc = main([
            "fig6", "--size", "tiny", "--workloads", "em3d",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert rc == 0
        assert "workload" in csv_path.read_text().splitlines()[0]
        rows = json.loads(json_path.read_text())
        assert any(r["policy"] == "ltp" for r in rows)

    def test_export_skip_for_unsupported(self, tmp_path, capsys):
        rc = main([
            "table3", "--size", "tiny", "--workloads", "em3d",
            "--csv", str(tmp_path / "x.csv"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "export skipped" in out

    def test_new_experiments_reachable(self, capsys):
        for cmd in ("variants", "traffic"):
            rc = main([cmd, "--size", "tiny", "--workloads", "em3d"])
            assert rc == 0
