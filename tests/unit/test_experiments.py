"""Unit tests for the experiment harnesses and the CLI (at tiny size,
on a subset of workloads, to stay fast)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    figure6,
    figure7,
    figure8,
    figure9,
    table3,
    table4,
)
from repro.experiments.cli import build_parser, main
from repro.experiments.common import make_policy_factory, workload_list

SUBSET = ["em3d", "tomcatv"]


class TestCommon:
    def test_all_policy_factories_construct(self):
        for name in ("base", "dsi", "last-pc", "ltp", "ltp-global"):
            policy = make_policy_factory(name)(0)
            assert policy.name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy_factory("magic")

    def test_workload_list_default_is_all_nine(self):
        assert len(workload_list(None)) == 9

    def test_workload_list_validates(self):
        with pytest.raises(ConfigurationError):
            workload_list(["em3d", "doom"])

    def test_workload_list_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            workload_list(["em3d", "tomcatv", "em3d"])


class TestFigure6:
    def test_runs_and_renders(self):
        res = figure6.run(size="tiny", workloads=SUBSET)
        text = res.render()
        assert "em3d" in text and "tomcatv" in text
        assert "Figure 6" in text

    def test_average_in_unit_interval(self):
        res = figure6.run(size="tiny", workloads=SUBSET)
        for policy in ("dsi", "last-pc", "ltp"):
            assert 0.0 <= res.average(policy) <= 1.0


class TestFigure7:
    def test_width_sweep(self):
        res = figure7.run(size="tiny", workloads=["em3d"], widths=(30, 6))
        assert set(res.reports["em3d"]) == {30, 6}
        assert "Figure 7" in res.render()


class TestFigure8:
    def test_both_organizations_present(self):
        res = figure8.run(size="tiny", workloads=["tomcatv"])
        assert "tomcatv" in res.per_block
        assert "tomcatv" in res.global_table
        assert "per-block" in res.render()


class TestTable3:
    def test_storage_rows(self):
        res = table3.run(size="tiny", workloads=SUBSET)
        for name in SUBSET:
            per_block, global_tab = res.storage[name]
            assert per_block.signature_bits == 13
            assert global_tab.signature_bits == 30
            assert per_block.entries_per_block > 0
        assert "Table 3" in res.render()


class TestFigure9AndTable4:
    def test_timing_experiments(self):
        res9 = figure9.run(size="tiny", workloads=["em3d"])
        assert res9.speedup("em3d", "ltp") > 0
        assert "Figure 9" in res9.render()
        res4 = table4.run(size="tiny", reuse=res9.reports)
        text = res4.render()
        assert "Table 4" in text and "em3d" in text


class TestAblations:
    def test_oracle_dominates(self):
        res = ablations.run(size="tiny", workloads=["em3d"])
        by = res.reports["em3d"]
        assert by["oracle"].predicted_fraction >= \
            by["ltp"].predicted_fraction
        assert "Ablations" in res.render()


class TestCLI:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for cmd in ("fig6", "fig7", "fig8", "fig9", "table3", "table4",
                    "ablations", "all", "config", "workloads"):
            args = parser.parse_args(
                [cmd] if cmd in ("config",) else [cmd]
            )
            assert args.command == cmd

    def test_config_command(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "416" in out

    def test_experiment_command(self, capsys):
        assert main(["fig6", "--size", "tiny",
                     "--workloads", "em3d"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_workloads_command(self, capsys):
        assert main(["workloads", "--size", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "em3d" in out and "raytrace" in out

    def test_run_all_command_caches(self, tmp_path, capsys):
        argv = ["run-all", "--size", "tiny", "--workloads", "em3d",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Figure 6" in first and "Figure 9" in first
        assert "Table 4" in first
        assert ", 0 from disk cache," in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        # every job of the repeat invocation is served from the cache
        assert "0 executed" in second
        assert "(100% served without execution)" in second

    def test_run_all_no_cache_writes_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["run-all", "--size", "tiny",
                     "--workloads", "em3d",
                     "--cache-dir", str(cache_dir),
                     "--no-cache"]) == 0
        capsys.readouterr()
        assert not cache_dir.exists()

    def test_experiment_command_with_cache(self, tmp_path, capsys):
        argv = ["fig9", "--size", "tiny", "--workloads", "em3d",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out


class TestProfileAndEngineCli:
    """The `profile` subcommand and the `--engine` selection flag."""

    @pytest.fixture(autouse=True)
    def pinned_engine_state(self, monkeypatch):
        """Restore the process-global engine selection after each
        test — `--engine` deliberately mutates it."""
        from repro.timing import core as engine_core

        monkeypatch.setattr(engine_core, "_selected", None)
        monkeypatch.setenv(engine_core.ENGINE_ENV, "fast")

    def test_profile_prints_and_writes_bench_record(
        self, tmp_path, capsys
    ):
        import json

        out = tmp_path / "BENCH_profile_fig9.json"
        code = main([
            "profile", "fig9", "--size", "tiny",
            "--workloads", "em3d", "--engine", "fast",
            "--top", "3", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "specs/s" in text
        assert "events by kind" in text
        record = json.loads(out.read_text())
        assert record["schema"] == "ltp-repro-bench/1"
        assert record["name"] == "profile_fig9"
        assert record["extra_info"]["engine"] == "fast"
        assert record["extra_info"]["specs"] > 0
        assert record["extra_info"]["event_counts"]["dir_arrive"] > 0

    def test_profile_reference_core_reports_counters(self, capsys):
        # the reference core keeps the same per-kind counters as the
        # fast one (pinned identical by the conformance suite), so
        # the profile breakdown is engine-independent
        code = main([
            "profile", "fig9", "--size", "tiny",
            "--workloads", "em3d", "--engine", "reference", "--top", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "events by kind:" in out
        assert "dir_arrive" in out

    def test_profile_rejects_non_timing_experiment(self, capsys):
        code = main(["profile", "fig6", "--size", "tiny"])
        assert code == 2
        assert "no timing jobs" in capsys.readouterr().err

    def test_engine_flag_pins_the_process_selection(self, capsys):
        from repro.timing import selected_engine

        code = main([
            "fig9", "--size", "tiny", "--workloads", "em3d",
            "--engine", "reference",
        ])
        assert code == 0
        assert selected_engine() == "reference"
