"""Unit tests for the two-level LTPs (repro.core.ltp), exercising the
Figure 3 scenarios directly against the predictor interface."""

from repro.core.confidence import ConfidenceConfig
from repro.core.ltp import GlobalLTP, PerBlockLTP
from repro.core.signature import TruncatedAddEncoder
from repro.protocol.states import MissKind

FAST = ConfidenceConfig(initial=3, predict_threshold=3)  # learn once


def drive_trace(policy, block, pcs, invalidate=True):
    """Feed one trace (first pc is the coherence miss); return the index
    at which the policy fired, or None."""
    fired_at = None
    for i, pc in enumerate(pcs):
        decision = policy.on_access(
            block, pc,
            trace_start=(i == 0),
            miss_kind=MissKind.READ_FETCH if i == 0 else None,
            version=0 if i == 0 else None,
        )
        if decision.self_invalidate:
            fired_at = i
            break
    if fired_at is None and invalidate:
        policy.on_invalidation(block)
    return fired_at


class TestLearningCycle:
    def test_no_prediction_before_training(self):
        ltp = PerBlockLTP(confidence=FAST)
        assert drive_trace(ltp, 1, [0x10, 0x20]) is None

    def test_predicts_after_one_observation_with_fast_confidence(self):
        ltp = PerBlockLTP(confidence=FAST)
        drive_trace(ltp, 1, [0x10, 0x20])
        assert drive_trace(ltp, 1, [0x10, 0x20]) == 1

    def test_default_confidence_requires_two_confirmations(self):
        ltp = PerBlockLTP()  # initial=2, threshold=3
        drive_trace(ltp, 1, [0x10, 0x20])
        assert drive_trace(ltp, 1, [0x10, 0x20]) is None
        assert drive_trace(ltp, 1, [0x10, 0x20]) == 1

    def test_single_touch_trace_fires_at_fetch(self):
        """A one-access trace is complete at the miss itself."""
        ltp = PerBlockLTP(confidence=FAST)
        drive_trace(ltp, 1, [0x10])
        assert drive_trace(ltp, 1, [0x10]) == 0

    def test_loop_double_touch_fires_at_second_touch(self):
        """Figure 3(c): {PCi, PCj, PCj} — a single-PC predictor cannot
        place the last touch, the trace signature can."""
        ltp = PerBlockLTP(confidence=FAST)
        trace = [0x10, 0x20, 0x20]
        drive_trace(ltp, 1, trace)
        assert drive_trace(ltp, 1, trace) == 2

    def test_procedure_reuse_distinguished(self):
        """Figure 3(b): last touch only in the last invocation of foo."""
        ltp = PerBlockLTP(confidence=FAST)
        trace = [0x10, 0x20, 0x20]  # foo's PCj touched twice
        drive_trace(ltp, 1, trace)
        fired = drive_trace(ltp, 1, trace)
        assert fired == 2  # not at the first PCj

    def test_distinct_traces_learned_per_block(self):
        ltp = PerBlockLTP(confidence=FAST)
        drive_trace(ltp, 1, [0x10, 0x20])
        drive_trace(ltp, 2, [0x30])
        assert drive_trace(ltp, 1, [0x10, 0x20]) == 1
        assert drive_trace(ltp, 2, [0x30]) == 0

    def test_feedback_strengthens_and_weakens(self):
        ltp = PerBlockLTP(confidence=FAST)
        drive_trace(ltp, 1, [0x10])
        fired = drive_trace(ltp, 1, [0x10], invalidate=False)
        assert fired == 0
        ltp.on_premature(1)  # poisoned
        assert drive_trace(ltp, 1, [0x10]) is None

    def test_verified_correct_keeps_firing(self):
        ltp = PerBlockLTP(confidence=FAST)
        drive_trace(ltp, 1, [0x10])
        for _ in range(3):
            fired = drive_trace(ltp, 1, [0x10], invalidate=False)
            assert fired == 0
            ltp.on_verified_correct(1)

    def test_statistics_counters(self):
        ltp = PerBlockLTP(confidence=FAST)
        drive_trace(ltp, 1, [0x10, 0x20])
        drive_trace(ltp, 1, [0x10, 0x20], invalidate=False)
        assert ltp.traces_learned == 1
        assert ltp.predictions_fired == 1


class TestPerBlockIsolation:
    def test_no_cross_block_interference(self):
        """Per-block tables: block 2's traces never fire block 3's
        signature, even when one is a subtrace of the other."""
        ltp = PerBlockLTP(confidence=FAST)
        short = [0x10, 0x20]
        long = [0x10, 0x20, 0x30]
        drive_trace(ltp, 2, short)   # learned only for block 2
        fired = drive_trace(ltp, 3, long)
        assert fired is None  # block 3 has no table entry yet


class TestGlobalAliasing:
    def test_subtrace_aliasing_across_blocks(self):
        """Section 5.3: block A's complete trace is a subtrace of block
        B's; a global table fires prematurely mid-trace on B."""
        ltp = GlobalLTP(confidence=FAST)
        short = [0x10, 0x20]
        long = [0x10, 0x20, 0x30]
        drive_trace(ltp, 2, short)
        fired = drive_trace(ltp, 3, long)
        assert fired == 1  # premature: fired where A's trace ended

    def test_training_transfer(self):
        """The flip side: identical traces on different blocks share
        one signature entry (the storage benefit of PAg)."""
        ltp = GlobalLTP(confidence=FAST)
        drive_trace(ltp, 2, [0x10, 0x20])
        assert drive_trace(ltp, 9, [0x10, 0x20]) == 1


class TestStorageReports:
    def test_per_block_report_counts_tables(self):
        ltp = PerBlockLTP(encoder=TruncatedAddEncoder(13),
                          confidence=FAST)
        drive_trace(ltp, 1, [0x10, 0x20])
        # NB: 0x34, not 0x30 — a single-touch trace at 0x30 would alias
        # the {0x10, 0x20} signature under truncated addition and fire
        # instead of learning a second entry.
        drive_trace(ltp, 1, [0x34])
        drive_trace(ltp, 2, [0x40])
        report = ltp.storage_report()
        assert report.signature_bits == 13
        assert report.tracked_blocks == 2
        assert report.table_entries_total == 3
        assert sorted(report.per_block_entries) == [1, 2]
        assert report.entries_per_block == 1.5

    def test_global_report_shares_entries(self):
        ltp = GlobalLTP(confidence=FAST)
        drive_trace(ltp, 1, [0x10])
        drive_trace(ltp, 2, [0x10])  # same signature, shared entry
        report = ltp.storage_report()
        assert report.tracked_blocks == 2
        assert report.table_entries_total == 1

    def test_overhead_bytes_formula(self):
        """7 bytes/block at 13-bit signatures and 2.8 entries/block —
        the paper's per-block headline figure."""
        from repro.core.base import StorageReport

        report = StorageReport(
            signature_bits=13, counter_bits=2,
            tracked_blocks=10, table_entries_total=28,
        )
        # 13 + 2.8 * 15 = 55 bits = 6.875 bytes
        assert abs(report.overhead_bytes_per_block - 6.875) < 1e-9
