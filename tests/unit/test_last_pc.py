"""Unit tests for the Last-PC baseline (repro.core.last_pc)."""

from repro.core.confidence import ConfidenceConfig
from repro.core.last_pc import LastPCPredictor
from repro.protocol.states import MissKind

FAST = ConfidenceConfig(initial=3, predict_threshold=3)


def drive(policy, block, pcs, invalidate=True):
    fired_at = None
    for i, pc in enumerate(pcs):
        d = policy.on_access(
            block, pc, i == 0,
            MissKind.READ_FETCH if i == 0 else None,
            0 if i == 0 else None,
        )
        if d.self_invalidate:
            fired_at = i
            break
    if fired_at is None and invalidate:
        policy.on_invalidation(block)
    return fired_at


class TestLastPC:
    def test_predicts_unique_final_pc(self):
        """When the final instruction touches the block exactly once,
        a single PC suffices (the easy case Last-PC gets right)."""
        lp = LastPCPredictor(confidence=FAST)
        drive(lp, 1, [0x10, 0x20, 0x30])
        assert drive(lp, 1, [0x10, 0x20, 0x30]) == 2

    def test_fails_on_repeated_final_pc(self):
        """Figure 3(c): the loop's load touches twice; Last-PC fires at
        the first touch (premature), then is retired by the poison
        mechanism — 'not predicted' forever after."""
        lp = LastPCPredictor(confidence=FAST)
        trace = [0x10, 0x20, 0x20]
        drive(lp, 1, trace)
        fired = drive(lp, 1, trace, invalidate=False)
        assert fired == 1  # premature, at the first 0x20
        lp.on_premature(1)
        # re-train: completes externally with the same last PC
        drive(lp, 1, trace)
        assert drive(lp, 1, trace) is None

    def test_fires_at_miss_for_single_access_trace(self):
        lp = LastPCPredictor(confidence=FAST)
        drive(lp, 1, [0x10])
        assert drive(lp, 1, [0x10]) == 0

    def test_equivalent_to_history_length_one(self):
        """Any two traces with the same final PC share a signature."""
        lp = LastPCPredictor(confidence=FAST)
        drive(lp, 1, [0x10, 0x30])
        # different prefix, same last PC: fires anyway
        assert drive(lp, 1, [0x99, 0x30]) == 1

    def test_name(self):
        assert LastPCPredictor().name == "last-pc"
