"""Unit tests for timing-model components: config, network, locks,
directory engine."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.timing.config import SystemConfig
from repro.timing.directory_engine import DirectoryEngine
from repro.timing.locks import LockManager
from repro.timing.messages import Message, MsgType
from repro.timing.network import Network
from repro.timing.stats import DirectoryStats, SelfInvalStats


class TestSystemConfig:
    def test_default_round_trip_matches_table1(self):
        cfg = SystemConfig()
        assert cfg.clean_miss_round_trip == 416
        assert cfg.block_size == 32
        assert cfg.num_nodes == 32

    def test_remote_to_local_ratio_about_four(self):
        cfg = SystemConfig()
        ratio = cfg.clean_miss_round_trip / cfg.memory_service_time
        assert 3.5 <= ratio <= 4.5

    def test_home_interleaving(self):
        cfg = SystemConfig(num_nodes=4)
        assert [cfg.home_of(b) for b in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_nodes=0)
        with pytest.raises(ConfigurationError):
            SystemConfig(network_latency=-1)


class TestNetwork:
    def test_constant_latency(self):
        net = Network(SystemConfig(num_nodes=2))
        arrival = net.send_at(0, 100.0)
        assert arrival == 100.0 + 8 + 80  # ni overhead + latency

    def test_interface_serialization(self):
        """Back-to-back sends from one node queue at its interface."""
        net = Network(SystemConfig(num_nodes=2))
        first = net.send_at(0, 0.0)
        second = net.send_at(0, 0.0)
        assert second == first + 8

    def test_other_nodes_unaffected(self):
        net = Network(SystemConfig(num_nodes=2))
        for _ in range(5):
            net.send_at(0, 0.0)
        assert net.send_at(1, 0.0) == 88.0

    def test_messages_counted(self):
        net = Network(SystemConfig(num_nodes=2))
        net.send_at(0, 0.0)
        net.send_at(1, 0.0)
        assert net.messages_sent == 2


class TestLockManager:
    def test_uncontended_acquire(self):
        locks = LockManager()
        assert locks.try_acquire(1, 0)
        assert locks.holder(1) == 0

    def test_fifo_grant_order(self):
        locks = LockManager()
        locks.try_acquire(1, 0)
        assert not locks.try_acquire(1, 1)
        assert not locks.try_acquire(1, 2)
        assert locks.release(1, 0) == 1
        assert locks.release(1, 1) == 2
        assert locks.release(1, 2) is None

    def test_release_by_non_holder_rejected(self):
        locks = LockManager()
        locks.try_acquire(1, 0)
        with pytest.raises(SimulationError):
            locks.release(1, 5)

    def test_queue_length(self):
        locks = LockManager()
        locks.try_acquire(1, 0)
        locks.try_acquire(1, 1)
        assert locks.queue_length(1) == 1


class _Calendar:
    """Minimal deterministic scheduler standing in for the event loop."""

    def __init__(self):
        self.events = []

    def schedule(self, time, kind, fn):
        self.events.append((time, len(self.events), kind, fn))

    def run(self):
        while self.events:
            self.events.sort()
            time, _, _, fn = self.events.pop(0)
            fn(time)


class TestDirectoryEngine:
    def _engine(self, handler):
        cal = _Calendar()
        stats = DirectoryStats()
        cfg = SystemConfig(num_nodes=2)
        eng = DirectoryEngine(0, cfg, cal.schedule, handler, stats)
        return eng, cal, stats

    def test_single_message_serviced(self):
        seen = []
        eng, cal, stats = self._engine(lambda m, t: seen.append((m, t)))
        eng.arrive(Message(MsgType.READ_REQ, src=1, block=5), 10.0)
        cal.run()
        assert len(seen) == 1
        msg, t_done = seen[0]
        assert t_done == 10.0 + 68 + 104  # request overhead + memory
        assert stats.mean_queueing == 0.0

    def test_pipelined_occupancy(self):
        """Second message starts engine_occupancy after the first, not
        after the first completes (the two-stage pipeline)."""
        done = []
        eng, cal, stats = self._engine(lambda m, t: done.append(t))
        eng.arrive(Message(MsgType.READ_REQ, src=1, block=1), 0.0)
        eng.arrive(Message(MsgType.READ_REQ, src=1, block=2), 0.0)
        cal.run()
        assert done[0] == 172.0
        assert done[1] == 52.0 + 172.0  # start at occupancy, not at 172
        assert stats.queueing_cycles == 52.0

    def test_queueing_recorded_per_message(self):
        eng, cal, stats = self._engine(lambda m, t: None)
        for i in range(4):
            eng.arrive(Message(MsgType.ACK_INV, src=1, block=i), 0.0)
        cal.run()
        assert stats.messages == 4
        # waits of 0, 52, 104, 156
        assert stats.queueing_cycles == 312.0

    def test_control_messages_cheaper_than_data(self):
        eng, cal, _ = self._engine(lambda m, t: None)
        data = eng.service_time_of(
            Message(MsgType.WRITEBACK, src=1, block=1)
        )
        ctrl = eng.service_time_of(
            Message(MsgType.ACK_INV, src=1, block=1)
        )
        assert data > ctrl

    def test_dirty_self_inval_costs_memory_write(self):
        eng, cal, _ = self._engine(lambda m, t: None)
        dirty = eng.service_time_of(
            Message(MsgType.SELF_INVAL, src=1, block=1, dirty=True)
        )
        clean = eng.service_time_of(
            Message(MsgType.SELF_INVAL, src=1, block=1, dirty=False)
        )
        assert dirty > clean

    def test_transaction_parks_requests(self):
        """Requests for a busy block wait for end_transaction."""
        order = []

        def handler(msg, t):
            order.append((msg.mtype, msg.src, t))
            if msg.src == 1 and msg.mtype is MsgType.READ_REQ:
                eng.begin_transaction(msg.block)

        eng, cal, _ = self._engine(handler)
        eng.arrive(Message(MsgType.READ_REQ, src=1, block=7), 0.0)
        eng.arrive(Message(MsgType.READ_REQ, src=2, block=7), 1.0)
        cal.run()
        assert len(order) == 1  # second request parked
        eng.end_transaction(7, 1000.0)
        cal.run()
        assert len(order) == 2
        assert order[1][1] == 2

    def test_completion_messages_never_park(self):
        order = []

        def handler(msg, t):
            order.append(msg.mtype)
            if msg.mtype is MsgType.READ_REQ:
                eng.begin_transaction(msg.block)

        eng, cal, _ = self._engine(handler)
        eng.arrive(Message(MsgType.READ_REQ, src=1, block=7), 0.0)
        eng.arrive(Message(MsgType.WRITEBACK, src=2, block=7), 1.0)
        cal.run()
        assert MsgType.WRITEBACK in order

    def test_address_interlock_same_block(self):
        """Two back-to-back requests for one block must not pipeline:
        the second is parked until the first's handler runs."""
        times = []
        eng, cal, _ = self._engine(lambda m, t: times.append(t))
        eng.arrive(Message(MsgType.READ_REQ, src=1, block=9), 0.0)
        eng.arrive(Message(MsgType.READ_REQ, src=2, block=9), 0.0)
        cal.run()
        assert times[1] >= times[0] + 172  # fully serialized


class TestSelfInvalStats:
    def test_timeliness_fraction(self):
        s = SelfInvalStats(fired=10, timely_correct=6, late_correct=2,
                           premature=1)
        assert s.correct == 8
        assert s.timeliness == pytest.approx(0.75)
        assert s.unresolved == 1

    def test_timeliness_zero_when_no_correct(self):
        assert SelfInvalStats().timeliness == 0.0
