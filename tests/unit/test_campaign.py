"""Unit tests for the discovery-campaign subsystem: the parameter
space, the predicate-compiled interestingness metric, the seeded
driver (budget, refinement, resume-by-replay, wall-clock cutoff),
the local executor, and the ``campaign run/status/resume`` CLI."""

import json

import pytest

from repro.campaign import (
    BrokerExecutor,  # noqa: F401 — import surface check
    CampaignDriver,
    CampaignError,
    InterestingnessMetric,
    LocalExecutor,
    ParameterSpace,
    default_space,
    point_key,
    point_spec,
    space_from_json,
)
from repro.errors import ConfigurationError
from repro.experiments.cli import main
from repro.runner import ResultCache
from repro.store.query import QueryError


def _toy_space(constraint=None):
    return ParameterSpace(
        dimensions=(
            ("workload", ("em3d", "tomcatv")),
            ("policy", ("base", "ltp")),
        ),
        constraint=constraint,
    )


def _metric(clauses=("accuracy < 0.5",)):
    return InterestingnessMetric.parse(list(clauses))


class TestParameterSpace:
    def test_points_cross_product_in_order(self):
        points = _toy_space().points()
        assert len(points) == 4
        assert points[0] == {"workload": "em3d", "policy": "base"}
        assert points[-1] == {
            "workload": "tomcatv", "policy": "ltp",
        }

    def test_default_space_prunes_invalid_delay_combos(self):
        space = default_space()
        points = space.points()
        # 2 kinds x 3 workloads x 3 policies at delay 0, plus
        # timing/ltp x 3 workloads x 2 nonzero delays
        assert len(points) == 24
        for point in points:
            if point["si_fire_delay"]:
                assert point["kind"] == "timing"
                assert point["policy"] == "ltp"

    def test_contains_rejects_foreign_and_invalid_points(self):
        space = default_space()
        assert space.contains({
            "kind": "timing", "workload": "em3d", "policy": "ltp",
            "si_fire_delay": 500,
        })
        # invalid per constraint
        assert not space.contains({
            "kind": "accuracy", "workload": "em3d", "policy": "ltp",
            "si_fire_delay": 500,
        })
        # value outside the declared range
        assert not space.contains({
            "kind": "timing", "workload": "em3d", "policy": "ltp",
            "si_fire_delay": 123,
        })
        # missing a dimension
        assert not space.contains({"workload": "em3d"})

    def test_neighbors_one_dimension_valid_only(self):
        space = default_space()
        point = {
            "kind": "timing", "workload": "em3d", "policy": "ltp",
            "si_fire_delay": 500,
        }
        neighbors = space.neighbors(point)
        assert all(space.contains(n) for n in neighbors)
        for n in neighbors:
            assert sum(
                n[k] != point[k] for k in space.names
            ) == 1
        # kind=accuracy neighbor is invalid (nonzero delay) — pruned
        assert {
            "kind": "accuracy", "workload": "em3d", "policy": "ltp",
            "si_fire_delay": 500,
        } not in neighbors

    def test_empty_dimension_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            ParameterSpace(dimensions=(("workload", ()),))

    def test_unknown_constraint_rejected(self):
        with pytest.raises(ConfigurationError, match="constraint"):
            ParameterSpace(
                dimensions=(("workload", ("em3d",)),),
                constraint="nope",
            )

    def test_json_round_trip(self):
        space = default_space(workloads=["em3d"])
        clone = space_from_json(space.to_json())
        assert clone == space
        assert clone.points() == space.points()


class TestPointSpec:
    def test_accuracy_point(self):
        spec = point_spec(
            {
                "kind": "accuracy", "workload": "em3d",
                "policy": "base", "si_fire_delay": 0,
            },
            size="tiny",
        )
        assert spec.kind == "accuracy"
        assert spec.policy.name == "base"
        assert spec.size == "tiny"
        assert spec.si_fire_delay == 0

    def test_timing_point_carries_delay(self):
        spec = point_spec(
            {
                "kind": "timing", "workload": "em3d",
                "policy": "ltp", "si_fire_delay": 2000,
            },
            size="tiny",
        )
        assert spec.kind == "timing"
        assert spec.si_fire_delay == 2000

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="wat"):
            point_spec({"workload": "em3d", "wat": 1})


class TestInterestingnessMetric:
    def test_scores_metric_and_identity_predicates(self):
        metric = InterestingnessMetric.parse(
            ["accuracy < 0.5", "policy == base"]
        )
        row = {"policy": "base", "metrics": {"accuracy": 0.1}}
        assert metric.interesting(row)
        assert not metric.interesting(
            {"policy": "ltp", "metrics": {"accuracy": 0.1}}
        )
        assert not metric.interesting(
            {"policy": "base", "metrics": {"accuracy": 0.9}}
        )
        # a row missing the metric never matches
        assert not metric.interesting(
            {"policy": "base", "metrics": {}}
        )

    def test_needs_at_least_one_clause(self):
        with pytest.raises(QueryError):
            InterestingnessMetric([])

    def test_malformed_clause_raises(self):
        with pytest.raises(QueryError):
            InterestingnessMetric.parse(["not a predicate"])

    def test_describe_and_metric_names(self):
        metric = InterestingnessMetric.parse(
            ["accuracy < 0.5", "policy == base"]
        )
        assert metric.describe() == "accuracy < 0.5 AND policy == base"
        assert metric.metric_names == ("accuracy",)


def _fake_executor(interesting_keys=(), log=None):
    """Deterministic fake: accuracy 0.0 for listed keys, 1.0 else."""
    interesting = set(interesting_keys)

    def execute(point):
        if log is not None:
            log.append(dict(point))
        key = point_key(point)
        return {
            "digest": f"digest-{key}",
            "metrics": {
                "accuracy": 0.0 if key in interesting else 1.0
            },
        }

    return execute


class TestCampaignDriver:
    def test_budget_stops_exploration(self):
        driver = CampaignDriver(
            "t", _toy_space(), _metric(), seed=1, budget=2
        )
        result = driver.run(_fake_executor())
        assert result.spent == 2
        assert result.stop_reason == "budget"

    def test_space_exhaustion_reported(self):
        driver = CampaignDriver(
            "t", _toy_space(), _metric(), seed=1, budget=100
        )
        result = driver.run(_fake_executor())
        assert result.spent == 4
        assert result.stop_reason == "space-exhausted"

    def test_refinement_jumps_the_queue(self):
        space = _toy_space()
        order = CampaignDriver(
            "t", space, _metric(), seed=3, budget=100
        ).exploration_order()
        first_key = point_key(order[0])
        log = []
        CampaignDriver(
            "t", space, _metric(), seed=3, budget=100
        ).run(_fake_executor([first_key], log=log))
        # the first point is interesting, so its neighbors are
        # explored immediately after it, ahead of the shuffle order
        neighbors = [point_key(n) for n in space.neighbors(order[0])]
        explored = [point_key(p) for p in log]
        assert explored[0] == first_key
        assert set(explored[1:1 + len(neighbors)]) == set(neighbors)

    def test_wall_clock_budget_uses_injected_clock(self):
        clock_now = [0.0]

        def clock():
            return clock_now[0]

        def slow_executor(point):
            clock_now[0] += 10.0
            return _fake_executor()(point)

        driver = CampaignDriver(
            "t", _toy_space(), _metric(), seed=1, budget=100,
            max_seconds=15.0, clock=clock,
        )
        result = driver.run(slow_executor)
        assert result.stop_reason == "wall-clock"
        assert result.spent == 2  # third point hit the deadline

    def test_resume_after_kill_continues_exactly(self, tmp_path):
        state = tmp_path / "state.json"
        full = CampaignDriver(
            "t", _toy_space(), _metric(), seed=5, budget=4
        ).run(_fake_executor())
        # "kill" after two points: a smaller first budget leaves the
        # same state file a mid-campaign SIGKILL would
        CampaignDriver(
            "t", _toy_space(), _metric(), seed=5, budget=2,
            state_path=state,
        ).run(_fake_executor())
        resumed = CampaignDriver.from_state(state, budget=4).run(
            _fake_executor()
        )
        assert resumed.executed == 2  # only the unexplored tail ran
        assert (
            [o["point"] for o in resumed.explored]
            == [o["point"] for o in full.explored]
        )

    def test_seed_mismatch_rejects_state(self, tmp_path):
        state = tmp_path / "state.json"
        CampaignDriver(
            "t", _toy_space(), _metric(), seed=1, budget=2,
            state_path=state,
        ).run(_fake_executor())
        with pytest.raises(CampaignError, match="seed"):
            CampaignDriver(
                "t", _toy_space(), _metric(), seed=2, budget=2,
                state_path=state,
            ).run(_fake_executor())

    def test_metric_mismatch_rejects_state(self, tmp_path):
        state = tmp_path / "state.json"
        CampaignDriver(
            "t", _toy_space(), _metric(), seed=1, budget=2,
            state_path=state,
        ).run(_fake_executor())
        with pytest.raises(CampaignError, match="metric"):
            CampaignDriver(
                "t", _toy_space(),
                _metric(["accuracy < 0.9"]), seed=1, budget=2,
                state_path=state,
            ).run(_fake_executor())

    def test_corrupt_state_raises(self, tmp_path):
        state = tmp_path / "state.json"
        state.write_text("{not json")
        with pytest.raises(CampaignError, match="unreadable"):
            CampaignDriver(
                "t", _toy_space(), _metric(), seed=1, budget=2,
                state_path=state,
            ).run(_fake_executor())

    def test_bad_budget_rejected(self):
        with pytest.raises(CampaignError, match="budget"):
            CampaignDriver(
                "t", _toy_space(), _metric(), seed=1, budget=0
            )


class TestLocalExecutor:
    def test_executes_point_and_publishes_to_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = LocalExecutor(cache, size="tiny")
        row = executor(
            {
                "kind": "accuracy", "workload": "em3d",
                "policy": "base", "si_fire_delay": 0,
            }
        )
        assert row["policy"] == "base"
        assert row["metrics"]["accuracy"] == 0.0
        # the run published through the cache, so the index row and
        # the executor's digest agree
        indexed = cache.index.select("", ())
        assert len(indexed) == 1
        assert indexed[0]["digest"] == row["digest"]


class TestCampaignCli:
    def _run(self, tmp_path, extra=()):
        return main([
            "campaign", "run",
            "--cache-dir", str(tmp_path / "cache"),
            "--budget", "4", "--seed", "3",
            "--size", "tiny",
            "--workloads", "em3d",
            "--policies", "base", "ltp",
            "--kinds", "accuracy",
            "--delays", "0",
            *extra,
        ])

    def test_run_tags_discoveries_and_writes_state(
        self, tmp_path, capsys
    ):
        assert self._run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "discovery(ies)" in out
        cache_dir = tmp_path / "cache"
        state = cache_dir / "campaigns" / "campaign-seed3.json"
        assert state.exists()
        data = json.loads(state.read_text())
        assert data["seed"] == 3
        assert any(o["interesting"] for o in data["explored"])
        # discoveries are queryable by campaign tag
        assert main([
            "query", "--cache-dir", str(cache_dir),
            "--campaign", "campaign-seed3", "--format", "json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(
            "campaign-seed3" in r["campaigns"] for r in rows
        )

    def test_resume_is_noop_after_completion(
        self, tmp_path, capsys
    ):
        assert self._run(tmp_path) == 0
        state = (
            tmp_path / "cache" / "campaigns" / "campaign-seed3.json"
        )
        before = state.read_bytes()
        capsys.readouterr()
        assert main([
            "campaign", "resume",
            "--cache-dir", str(tmp_path / "cache"),
            "--name", "campaign-seed3",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 fresh" in out
        assert state.read_bytes() == before

    def test_status_summarises_state(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        capsys.readouterr()
        assert main([
            "campaign", "status",
            "--cache-dir", str(tmp_path / "cache"),
            "--name", "campaign-seed3",
        ]) == 0
        out = capsys.readouterr().out
        assert "campaign-seed3" in out
        assert "discovery(ies)" in out

    def test_status_without_state_fails(self, tmp_path, capsys):
        assert main([
            "campaign", "status",
            "--cache-dir", str(tmp_path / "cache"),
            "--name", "nope",
        ]) == 1

    def test_query_unknown_campaign_errors(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        capsys.readouterr()
        assert main([
            "query", "--cache-dir", str(tmp_path / "cache"),
            "--campaign", "never-ran",
        ]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_bad_predicate_errors_cleanly(self, tmp_path, capsys):
        assert self._run(
            tmp_path, extra=("--where", "not a predicate")
        ) == 2
        assert "campaign:" in capsys.readouterr().err
