"""Engine-level tests for the delayed self-invalidation knob."""

import pytest

from repro.core import PerBlockLTP
from repro.core.confidence import ConfidenceConfig
from repro.errors import SimulationError
from repro.timing import SystemConfig, TimingSimulator
from tests.conftest import producer_consumer

FAST = ConfidenceConfig(initial=3, predict_threshold=3)


class TestSiFireDelay:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            TimingSimulator(lambda n: PerBlockLTP(), si_fire_delay=-1)

    def test_zero_delay_identical_to_default(self):
        ps = producer_consumer(iterations=12)
        a = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), si_fire_delay=0
        ).run(ps)
        b = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST)
        ).run(ps)
        assert a.execution_cycles == b.execution_cycles
        assert a.selfinval.fired == b.selfinval.fired

    def test_huge_delay_suppresses_firing(self):
        """With the issue delayed past the consumer's arrival, the copy
        is externally invalidated first and the SI is dropped at issue
        time — fired count collapses toward zero."""
        ps = producer_consumer(iterations=12)
        prompt = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST)
        ).run(ps)
        delayed = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST),
            si_fire_delay=50_000,
        ).run(ps)
        assert delayed.selfinval.fired < prompt.selfinval.fired

    def test_delay_never_breaks_accounting(self):
        ps = producer_consumer(iterations=12)
        rep = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST),
            config=SystemConfig(num_nodes=2),
            si_fire_delay=700,
        ).run(ps)
        s = rep.selfinval
        assert s.timely_correct + s.late_correct + s.premature + \
            s.unresolved == s.fired
