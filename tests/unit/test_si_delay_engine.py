"""Engine-level tests for the delayed self-invalidation knob."""

import pickle

import pytest

from repro.core import NullPolicy, PerBlockLTP
from repro.core.base import (
    DECISION_FIRE,
    DECISION_KEEP,
    SelfInvalidationPolicy,
)
from repro.core.confidence import ConfidenceConfig
from repro.errors import SimulationError
from repro.timing import SystemConfig, TimingSimulator
from repro.timing.engine_fast import FastTimingSimulator
from repro.trace.program import Access, Barrier, Program, ProgramSet
from tests.conftest import addr, producer_consumer

FAST = ConfidenceConfig(initial=3, predict_threshold=3)


class TestSiFireDelay:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            TimingSimulator(lambda n: PerBlockLTP(), si_fire_delay=-1)

    def test_zero_delay_identical_to_default(self):
        ps = producer_consumer(iterations=12)
        a = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), si_fire_delay=0
        ).run(ps)
        b = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST)
        ).run(ps)
        assert a.execution_cycles == b.execution_cycles
        assert a.selfinval.fired == b.selfinval.fired

    def test_huge_delay_suppresses_firing(self):
        """With the issue delayed past the consumer's arrival, the copy
        is externally invalidated first and the SI is dropped at issue
        time — fired count collapses toward zero."""
        ps = producer_consumer(iterations=12)
        prompt = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST)
        ).run(ps)
        delayed = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST),
            si_fire_delay=50_000,
        ).run(ps)
        assert delayed.selfinval.fired < prompt.selfinval.fired

    def test_delay_never_breaks_accounting(self):
        ps = producer_consumer(iterations=12)
        rep = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST),
            config=SystemConfig(num_nodes=2),
            si_fire_delay=700,
        ).run(ps)
        s = rep.selfinval
        assert s.timely_correct + s.late_correct + s.premature + \
            s.unresolved == s.fired


class FireOnce(SelfInvalidationPolicy):
    """Fires a self-invalidation for the very first access it sees,
    then stays quiet — the minimal trigger for the delayed-fire race."""

    name = "fire-once"

    def __init__(self):
        self.fired = False

    def on_access(self, block, pc, trace_start, miss_kind, version):
        if not self.fired:
            self.fired = True
            return DECISION_FIRE
        return DECISION_KEEP


def refetch_race_programs() -> ProgramSet:
    """Node 0 touches block B (arming a delayed fire), node 1's write
    invalidates the copy, node 0 refetches *inside* the delay window,
    then reads again after the stale fire's due time."""
    B = 0x40
    a = Program(0)
    b = Program(1)
    a.append(Access(0x100, addr(B), False))       # arms the delayed SI
    a.append(Barrier(0)), b.append(Barrier(0))
    b.append(Access(0x200, addr(B), True))        # external invalidation
    a.append(Barrier(1)), b.append(Barrier(1))
    a.append(Access(0x104, addr(B), False))       # refetch, new copy
    a.append(Barrier(2)), b.append(Barrier(2))
    # a filler access to a private block burns work >> delay, so the
    # probe below *issues* long after the stale fire's due time
    a.append(Access(0x10C, addr(0x80), False, work=40_000))
    # the probe: if the stale fire wrongly evicted the refetched
    # copy, this read misses
    a.append(Access(0x108, addr(B), False))
    return ProgramSet("refetch-race", 2, {0: a, 1: b})


class TestFireEpochRace:
    """Regression: a delayed fire armed against one copy must not
    evict the *next* copy installed by a refetch inside the delay
    window. The fire is bound to the copy's epoch; the external
    invalidation retires the epoch and the stale fire is dropped."""

    DELAY = 15_000

    def _factory(self, node):
        return FireOnce() if node == 0 else NullPolicy()

    @pytest.mark.parametrize(
        "core", [TimingSimulator, FastTimingSimulator]
    )
    def test_stale_fire_spares_the_refetched_copy(self, core):
        rep = core(
            self._factory,
            SystemConfig(num_nodes=2),
            si_fire_delay=self.DELAY,
        ).run(refetch_race_programs())
        # node 0's final read must be the run's one hit: the copy it
        # refetched is still present when the access issues. Before
        # the epoch guard, the stale fire evicted it (hits == 0).
        assert rep.hits == 1
        # and the stale fire itself was dropped at issue time, not
        # counted as fired
        assert rep.selfinval.fired == 0

    def test_cores_agree_on_the_race(self):
        reports = [
            pickle.dumps(
                core(
                    self._factory,
                    SystemConfig(num_nodes=2),
                    si_fire_delay=self.DELAY,
                ).run(refetch_race_programs())
            )
            for core in (TimingSimulator, FastTimingSimulator)
        ]
        assert reports[0] == reports[1]

    def test_zero_delay_unaffected(self):
        """Without a delay window there is no race: the fire lands
        synchronously on the copy the policy decided for."""
        rep = TimingSimulator(
            self._factory, SystemConfig(num_nodes=2), si_fire_delay=0
        ).run(refetch_race_programs())
        assert rep.selfinval.fired == 1
