"""Tests for the compression codec layer: pack/unpack round trips,
legacy (pre-codec) passthrough, corruption handling, and the
codec-transparent read + migrate paths of both on-disk caches."""

import pickle

import pytest

from repro.codecs import (
    BLOB_MAGIC,
    CODEC_NAMES,
    CodecError,
    blob_codec,
    get_codec,
    migrate_files,
    pack,
    unpack,
)
from repro.runner import ResultCache, census_job, execute_spec
from repro.workloads import TraceCache, cached_build, get_workload

SIZE = "tiny"

PAYLOAD = pickle.dumps(
    {"stats": list(range(500)), "text": "x" * 1000},
    protocol=pickle.HIGHEST_PROTOCOL,
)


class TestPackUnpack:
    @pytest.mark.parametrize("name", CODEC_NAMES)
    def test_round_trip(self, name):
        assert unpack(pack(PAYLOAD, name)) == PAYLOAD

    def test_none_codec_writes_legacy_format(self):
        # byte-identical to the pre-codec format: no container at all
        assert pack(PAYLOAD, "none") == PAYLOAD
        assert pack(PAYLOAD, None) == PAYLOAD

    def test_unpack_passes_legacy_bytes_through(self):
        assert unpack(PAYLOAD) == PAYLOAD

    def test_zlib_blob_is_tagged_and_smaller(self):
        blob = pack(PAYLOAD, "zlib")
        assert blob.startswith(BLOB_MAGIC)
        assert blob_codec(blob) == "zlib"
        assert len(blob) < len(PAYLOAD)

    def test_blob_codec_of_raw_is_none(self):
        assert blob_codec(PAYLOAD) == "none"

    def test_truncated_payload_raises(self):
        blob = pack(PAYLOAD, "zlib")
        with pytest.raises(CodecError):
            unpack(blob[: len(blob) // 2])

    def test_corrupted_payload_raises(self):
        blob = pack(PAYLOAD, "zlib")
        corrupt = blob[:-8] + b"\x00" * 8
        with pytest.raises(CodecError):
            unpack(corrupt)

    def test_torn_header_raises(self):
        with pytest.raises(CodecError):
            unpack(BLOB_MAGIC)  # no name length at all
        with pytest.raises(CodecError):
            unpack(BLOB_MAGIC + bytes([10]) + b"zl")  # short name

    def test_unknown_codec_in_blob_raises(self):
        blob = BLOB_MAGIC + bytes([3]) + b"lz9" + b"payload"
        with pytest.raises(CodecError):
            unpack(blob)

    def test_get_codec_vocabulary(self):
        assert get_codec("zlib").name == "zlib"
        assert get_codec(None).name == "none"
        zlib_codec = get_codec("zlib")
        assert get_codec(zlib_codec) is zlib_codec
        with pytest.raises(CodecError):
            get_codec("snappy")


class TestResultCacheCodecs:
    def _populate(self, cache):
        spec = census_job("em3d", SIZE)
        value = execute_spec(spec)
        cache.put(spec, value)
        return spec, value

    def test_zlib_entries_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, codec="zlib")
        spec, value = self._populate(cache)
        hit, got = cache.get(spec)
        assert hit
        assert pickle.dumps(got) == pickle.dumps(value)
        assert blob_codec(cache.path(spec).read_bytes()) == "zlib"

    def test_reads_are_codec_transparent(self, tmp_path):
        writer = ResultCache(tmp_path, codec="zlib")
        spec, value = self._populate(writer)
        hit, got = ResultCache(tmp_path).get(spec)  # none reader
        assert hit and pickle.dumps(got) == pickle.dumps(value)

    def test_legacy_raw_entry_is_read_by_zlib_cache(self, tmp_path):
        from repro._fsutil import atomic_write_bytes

        spec = census_job("em3d", SIZE)
        value = execute_spec(spec)
        reader = ResultCache(tmp_path, codec="zlib")
        # the pre-codec writer: raw pickle, no container
        atomic_write_bytes(
            reader.path(spec),
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )
        hit, got = reader.get(spec)
        assert hit and pickle.dumps(got) == pickle.dumps(value)

    def test_corrupt_compressed_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path, codec="zlib")
        spec, _ = self._populate(cache)
        path = cache.path(spec)
        path.write_bytes(BLOB_MAGIC + bytes([4]) + b"zlib" + b"junk")
        hit, got = cache.get(spec)
        assert not hit and got is None
        assert not path.exists(), "corrupt entry must be dropped"

    def test_migrate_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)  # legacy-format writer
        spec, value = self._populate(cache)
        raw_size = cache.path(spec).stat().st_size

        examined, changed, before, after = cache.migrate("zlib")
        assert (examined, changed) == (1, 1)
        assert before == raw_size
        assert blob_codec(cache.path(spec).read_bytes()) == "zlib"

        # idempotent: already in the target codec
        examined, changed, *_ = cache.migrate("zlib")
        assert (examined, changed) == (1, 0)

        # and back to the legacy raw format, byte-identical
        cache.migrate("none")
        assert cache.path(spec).read_bytes() == pickle.dumps(
            value, protocol=pickle.HIGHEST_PROTOCOL
        )

    def test_migrate_skips_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path, codec="zlib")
        spec, _ = self._populate(cache)
        bad = tmp_path / "zz" / ("f" * 64 + ".pkl")
        bad.parent.mkdir(parents=True)
        bad.write_bytes(BLOB_MAGIC + bytes([4]) + b"zlib" + b"junk")
        examined, changed, *_ = cache.migrate("none")
        assert (examined, changed) == (1, 1)


class TestTraceCacheCodecs:
    def test_zlib_trace_round_trips(self, tmp_path):
        plain = get_workload("em3d", SIZE).build()
        cache = TraceCache(tmp_path, codec="zlib")
        cached_build(get_workload("em3d", SIZE), cache)
        hit, got = TraceCache(tmp_path).get(get_workload("em3d", SIZE))
        assert hit
        assert pickle.dumps(got) == pickle.dumps(plain)
        workload = get_workload("em3d", SIZE)
        blob = cache.path(workload).read_bytes()
        assert blob_codec(blob) == "zlib"
        assert len(blob) < len(pickle.dumps(plain))

    def test_legacy_trace_entry_and_migrate(self, tmp_path):
        from repro._fsutil import atomic_write_bytes

        workload = get_workload("em3d", SIZE)
        raw = pickle.dumps(
            workload.build(), protocol=pickle.HIGHEST_PROTOCOL
        )
        cache = TraceCache(tmp_path, codec="zlib")
        atomic_write_bytes(cache.path(workload), raw)  # pre-codec
        hit, got = cache.get(workload)
        assert hit
        assert pickle.dumps(got, pickle.HIGHEST_PROTOCOL) == raw

        examined, changed, before, after = cache.migrate("zlib")
        assert (examined, changed) == (1, 1)
        assert after < before
        hit, got = TraceCache(tmp_path).get(workload)
        assert hit
        assert pickle.dumps(got, pickle.HIGHEST_PROTOCOL) == raw

    def test_blob_access_round_trip(self, tmp_path):
        workload = get_workload("em3d", SIZE)
        writer = TraceCache(tmp_path / "a", codec="zlib")
        cached_build(workload, writer)
        blob = writer.load_blob(workload)
        assert blob is not None and blob_codec(blob) == "zlib"

        receiver = TraceCache(tmp_path / "b")
        assert receiver.load_blob(workload) is None
        receiver.put_blob(workload, blob)
        hit, got = receiver.get(workload)
        assert hit
        assert pickle.dumps(got) == pickle.dumps(workload.build())


def test_migrate_files_accounting(tmp_path):
    paths = []
    for i in range(3):
        path = tmp_path / f"{i}.bin"
        path.write_bytes(PAYLOAD)
        paths.append(path)
    examined, changed, before, after = migrate_files(paths, "zlib")
    assert (examined, changed) == (3, 3)
    assert before == 3 * len(PAYLOAD)
    assert after < before


def test_pool_worker_init_attaches_codec(tmp_path):
    from repro.runner import runner as runner_module

    runner_module._worker_init(str(tmp_path), "zlib")
    try:
        assert runner_module._TRACE_CACHE.codec.name == "zlib"
    finally:
        runner_module._swap_trace_cache(None)
