"""Golden-file test for the `repro report --html` site structure.

The golden file pins the *skeleton* of the generated HTML — the
nesting of structural elements (sections, headings with their text,
tables, SVG figures) — not the full bytes, so numeric drift in
simulator output never breaks it while a dropped section, figure, or
table always does. Regenerate after intentional structure changes::

    PYTHONPATH=src python tests/unit/test_store_report.py
"""

import json
from html.parser import HTMLParser
from pathlib import Path

from repro.experiments import figure9
from repro.runner import ResultCache, execute_spec
from repro.store import generate_report

GOLDEN = Path(__file__).parent / "data" / "report_skeleton.txt"

#: elements that define the page skeleton; everything else (rows,
#: cells, chart marks, inline spans) is allowed to vary
_SKELETON_TAGS = {
    "html", "head", "title", "body", "main", "h1", "h2", "h3",
    "section", "table", "thead", "tbody", "svg", "footer",
}

#: headings keep their text so a renamed section is a golden change
_TEXT_TAGS = {"h1", "h2", "h3", "title"}

FIXED_NOW = 1700000000.0


class _Skeleton(HTMLParser):
    def __init__(self):
        super().__init__()
        self.lines = []
        self.depth = 0
        self._text_line = None
        self._text_tag = None
        self._text = []

    def handle_starttag(self, tag, attrs):
        if tag in _SKELETON_TAGS:
            ident = dict(attrs).get("id")
            label = f"{tag}#{ident}" if ident else tag
            self.lines.append("  " * self.depth + label)
            self.depth += 1
            if tag in _TEXT_TAGS:
                self._text_line = len(self.lines) - 1
                self._text_tag = tag
                self._text = []

    def handle_endtag(self, tag):
        if tag in _SKELETON_TAGS:
            if tag == self._text_tag:
                text = "".join(self._text).strip()
                self.lines[self._text_line] += f": {text}"
                self._text_tag = self._text_line = None
            self.depth = max(0, self.depth - 1)

    def handle_data(self, data):
        if self._text_tag:
            self._text.append(data)


def skeleton(html_text: str) -> str:
    parser = _Skeleton()
    parser.feed(html_text)
    return "\n".join(parser.lines) + "\n"


def build_site(tmp_path):
    """A deterministic seeded cache + fleet + bench fixture."""
    cache = ResultCache(tmp_path / "cache")
    for spec in figure9.jobs(size="tiny", workloads=("em3d",)):
        cache.put(spec, execute_spec(spec))
    claims = tmp_path / "cache" / "claims"
    claims.mkdir(parents=True, exist_ok=True)
    events = [
        {"when": FIXED_NOW - 240 + i * 60, "action": action,
         "live": live, "desired": desired, "queue_depth": queue,
         "throughput": rate, "reason": "policy=queue"}
        for i, (action, live, desired, queue, rate) in enumerate([
            ("up", 0, 2, 8, 0.0),
            ("up", 2, 4, 16, 10.0),
            ("exit", 4, 4, 9, 12.0),
            ("down", 4, 1, 1, 14.0),
        ])
    ]
    with open(claims / "fleet_events.jsonl", "w") as log:
        for event in events:
            log.write(json.dumps(event) + "\n")
    (claims / "fleet.json").write_text(json.dumps({
        "updated": FIXED_NOW, "live": 1, "desired": 1,
        "queue_depth": 0, "throughput": 14.0, "policy": "queue",
        "halted": False, "events": events[-2:],
    }))
    (claims / "host-7.done").write_text(json.dumps({
        "host": "host", "pid": 7, "done": 12,
        "started": FIXED_NOW - 600, "updated": FIXED_NOW,
    }))
    bench = tmp_path / "bench"
    bench.mkdir()
    for i in range(3):
        (bench / f"BENCH_run{i}.json").write_text(json.dumps({
            "schema": "ltp-repro-bench/1",
            "name": "fleet_throughput", "fullname": "f", "group": "g",
            "timestamp": FIXED_NOW - 86400 * (3 - i),
            "python": "3", "platform": "linux", "rounds": 5,
            "stats_s": {"mean": 1.0 + 0.1 * i, "min": 0.9,
                        "max": 1.4, "stddev": 0.03},
            "extra_info": {},
        }))
    out = tmp_path / "site"
    generate_report(cache, out, bench_dir=bench, now=FIXED_NOW)
    return out


class TestReportGolden:
    def test_index_skeleton_matches_golden(self, tmp_path):
        out = build_site(tmp_path)
        got = skeleton((out / "index.html").read_text())
        want = GOLDEN.read_text()
        assert got == want, (
            "report HTML skeleton drifted from the golden file — if "
            "intentional, regenerate with: PYTHONPATH=src python "
            f"{__file__}"
        )

    def test_site_is_self_contained(self, tmp_path):
        out = build_site(tmp_path)
        pages = sorted(p.name for p in out.glob("*.html"))
        assert "index.html" in pages
        assert any(p.startswith("experiment-figure9") for p in pages)
        for page in pages:
            text = (out / page).read_text()
            assert "http://" not in text
            assert "https://" not in text
            assert "<script" not in text

    def test_experiment_page_structure(self, tmp_path):
        out = build_site(tmp_path)
        text = (out / "experiment-figure9.html").read_text()
        assert "<svg" in text            # the figure
        assert "execution_cycles" in text
        assert 'href="index.html"' in text
        assert text.count("<tr>") >= 3   # base/dsi/ltp rows

    def test_empty_cache_site_renders(self, tmp_path):
        cache = ResultCache(tmp_path / "empty")
        out = tmp_path / "site"
        index_path = generate_report(cache, out, now=FIXED_NOW)
        text = index_path.read_text()
        assert "No indexed experiment results" in text
        assert "No fleet activity" in text
        assert "No <code>BENCH_*.json</code> records" in text


if __name__ == "__main__":  # regenerate the golden skeleton
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        out = build_site(Path(tmp))
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(skeleton((out / "index.html").read_text()))
        print(f"regenerated {GOLDEN}")
