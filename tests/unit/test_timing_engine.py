"""Unit tests for the end-to-end timing simulator (repro.timing.engine)."""

import pytest

from repro.core import NullPolicy, PerBlockLTP
from repro.core.confidence import ConfidenceConfig
from repro.timing import SystemConfig, TimingSimulator
from repro.trace.program import (
    Access,
    Barrier,
    LockAcquire,
    LockRelease,
    Program,
    ProgramSet,
)

FAST = ConfidenceConfig(initial=3, predict_threshold=3)
CFG = SystemConfig(num_nodes=2)


def _ps(progs, n=2, name="t"):
    return ProgramSet(name, n, {i: p for i, p in enumerate(progs)})


def run_base(ps, cfg=CFG):
    return TimingSimulator(lambda n: NullPolicy(), cfg).run(ps)


class TestLatencies:
    def test_clean_miss_costs_one_round_trip(self):
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x10, 0x1000, False))
        rep = run_base(_ps([p0, p1]))
        # 1 cycle issue + 416-cycle round trip, no queueing
        assert rep.execution_cycles == pytest.approx(1 + 416)

    def test_hits_cost_hit_cycles(self):
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x10, 0x1000, False))
        for _ in range(10):
            p0.append(Access(0x14, 0x1000, False))
        rep = run_base(_ps([p0, p1]))
        assert rep.hits == 10
        assert rep.execution_cycles == pytest.approx(1 + 416 + 10)

    def test_work_cycles_accrue(self):
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x10, 0x1000, False, work=500))
        rep = run_base(_ps([p0, p1]))
        assert rep.execution_cycles == pytest.approx(501 + 416)

    def test_three_hop_dearer_than_two_hop(self):
        # 2-hop: node 1 reads an idle block.
        p0, p1 = Program(0), Program(1)
        p1.append(Access(0x10, 0x1000, False))
        two_hop = run_base(_ps([p0, p1])).execution_cycles
        # 3-hop: node 0 writes first, then node 1 reads (owner fetch).
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x20, 0x1000, True))
        p0.append(Barrier(1))
        p1.append(Barrier(1))
        p1.append(Access(0x10, 0x1000, False))
        three_hop = run_base(_ps([p0, p1])).execution_cycles
        assert three_hop > two_hop + 160  # at least two extra hops

    def test_external_invalidations_counted(self):
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x20, 0x1000, True))
        p0.append(Barrier(1))
        p1.append(Barrier(1))
        p1.append(Access(0x10, 0x1000, False))
        rep = run_base(_ps([p0, p1]))
        assert rep.external_invalidations == 1


class TestBarriers:
    def test_barrier_synchronizes_clocks(self):
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x10, 0x1000, False, work=5000))
        p0.append(Barrier(1))
        p1.append(Barrier(1))
        p1.append(Access(0x20, 0x2000, False))
        rep = run_base(_ps([p0, p1]))
        # node 1's access starts only after node 0's long phase
        assert rep.per_node_finish[1] > 5000

    def test_all_nodes_finish(self):
        progs = [Program(i) for i in range(4)]
        for p in progs:
            p.append(Barrier(1))
            p.append(Barrier(2))
        rep = run_base(_ps(progs, n=4), SystemConfig(num_nodes=4))
        assert len(rep.per_node_finish) == 4


class TestLocksTiming:
    def _lock_program(self, node, spins=1):
        p = Program(node)
        p.append(LockAcquire(1, 0x5000, 0x10, 0x14, fixed_spins=spins))
        p.append(Access(0x20, 0x6000, True, work=100))
        p.append(LockRelease(1, 0x5000, 0x18))
        return p

    def test_critical_sections_serialize(self):
        ps = _ps([self._lock_program(0), self._lock_program(1)])
        rep = run_base(ps)
        solo = run_base(
            _ps([self._lock_program(0), Program(1)])
        ).execution_cycles
        # two serialized critical sections take meaningfully longer
        assert rep.execution_cycles > solo * 1.5

    def test_lock_traffic_visible_in_stats(self):
        ps = _ps([self._lock_program(0), self._lock_program(1)])
        rep = run_base(ps)
        # spin read + test&set + CS write + unlock per node, minus hits
        assert rep.accesses == 8


class TestSelfInvalidationTiming:
    def _producer_consumer(self, iters=8):
        p0, p1 = Program(0), Program(1)
        bid = 0
        for _ in range(iters):
            p0.append(Access(0x100, 0x1000, True))
            bid += 1
            p0.append(Barrier(bid))
            p1.append(Barrier(bid))
            p1.append(Access(0x200, 0x1000, False))
            bid += 1
            p0.append(Barrier(bid))
            p1.append(Barrier(bid))
        return _ps([p0, p1], name="pc")

    def test_ltp_fires_and_is_timely(self):
        ps = self._producer_consumer()
        rep = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), CFG
        ).run(ps)
        assert rep.selfinval.fired > 0
        assert rep.selfinval.timely_correct > 0
        assert rep.selfinval.timeliness > 0.8

    def test_ltp_speeds_up_producer_consumer(self):
        ps = self._producer_consumer(iters=12)
        base = run_base(ps)
        ltp = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), CFG
        ).run(ps)
        assert ltp.speedup_over(base) > 1.02

    def test_si_eliminates_invalidations(self):
        ps = self._producer_consumer(iters=12)
        base = run_base(ps)
        ltp = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), CFG
        ).run(ps)
        assert ltp.external_invalidations < base.external_invalidations

    def test_storage_attached(self):
        ps = self._producer_consumer()
        rep = TimingSimulator(
            lambda n: PerBlockLTP(confidence=FAST), CFG
        ).run(ps)
        assert rep.storage is not None
        assert rep.storage.tracked_blocks > 0


class TestNodeCountAdaptation:
    def test_config_adapts_to_programs(self):
        """A 32-node default config runs a 2-node program set."""
        p0, p1 = Program(0), Program(1)
        p0.append(Access(0x10, 0x1000, False))
        rep = TimingSimulator(lambda n: NullPolicy()).run(_ps([p0, p1]))
        assert len(rep.per_node_finish) == 2

    def test_report_policy_name(self):
        p0, p1 = Program(0), Program(1)
        rep = TimingSimulator(lambda n: NullPolicy()).run(_ps([p0, p1]))
        assert rep.policy == "base"
        assert rep.summary()
