"""Tests for the sqlite result store: index writes on every publish,
the query predicate language, reindexing, and the `repro query` /
`cache reindex` / `cache stats` hint CLI surfaces."""

import json
import sqlite3

import pytest

from repro.experiments import figure9
from repro.experiments.cli import main
from repro.runner import ResultCache, execute_spec
from repro.runner.cache import spec_digest
from repro.runner.spec import PolicySpec, accuracy_job, census_job
from repro.store import (
    INDEX_DB_NAME,
    QueryError,
    ResultIndex,
    parse_predicate,
    reindex,
    run_query,
    scalar_metrics,
)
from repro.store.query import (
    build_filter,
    format_rows_csv,
    format_rows_json,
    format_rows_table,
)

SIZE = "tiny"


def _ltp_spec(workload="em3d"):
    return accuracy_job(workload, SIZE, PolicySpec(name="ltp"))


class TestIndexOnPut:
    def test_put_records_row_and_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        rows = cache.index.select("", ())
        assert len(rows) == 1
        row = rows[0]
        assert row["digest"] == cache.key(spec)
        assert row["workload"] == "em3d"
        assert row["policy"] == "ltp"
        assert row["kind"] == "accuracy"
        assert row["salt"] == cache.salt
        assert row["codec"] == "none"
        assert row["size_bytes"] > 0
        assert 0.0 <= row["metrics"]["accuracy"] <= 1.0

    def test_put_is_idempotent_per_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        value = execute_spec(spec)
        cache.put(spec, value)
        first = cache.index.select("", ())[0]
        cache.put(spec, value, holder="worker-1")
        rows = cache.index.select("", ())
        assert len(rows) == 1
        assert rows[0]["holder"] == "worker-1"
        assert rows[0]["created"] == first["created"]

    def test_holder_recorded(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec), holder="hostx-42")
        assert cache.index.select("", ())[0]["holder"] == "hostx-42"

    def test_index_disabled(self, tmp_path):
        cache = ResultCache(tmp_path, index=False)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        assert cache.index is None
        assert not (tmp_path / INDEX_DB_NAME).exists()

    def test_index_failure_never_fails_publish(self, tmp_path):
        cache = ResultCache(tmp_path)
        # a directory where the db file should be makes every sqlite
        # connect fail; the publish must still land
        (tmp_path / INDEX_DB_NAME).mkdir(parents=True)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        assert cache.get(spec)[0]

    def test_count_without_db_is_none_and_creates_nothing(
        self, tmp_path
    ):
        index = ResultIndex(tmp_path)
        assert index.count() is None
        assert not index.path.exists()

    def test_census_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = census_job("em3d", SIZE)
        value = execute_spec(spec)
        cache.put(spec, value)
        metrics = cache.index.select("", ())[0]["metrics"]
        assert metrics["total_blocks"] > 0
        assert any(k.startswith("fraction_") for k in metrics)

    def test_scalar_metrics_unknown_type(self):
        assert scalar_metrics(object()) == {}


class TestPredicates:
    def test_parse_numeric(self):
        pred = parse_predicate("accuracy<0.9")
        assert (pred.name, pred.op, pred.value) == (
            "accuracy", "<", 0.9
        )
        assert pred.is_metric

    def test_parse_column_equality(self):
        pred = parse_predicate("policy = ltp")
        assert (pred.name, pred.op, pred.value) == (
            "policy", "==", "ltp"
        )
        assert not pred.is_metric

    def test_parse_quoted_literal(self):
        assert parse_predicate("workload='em3d'").value == "em3d"

    def test_parse_malformed(self):
        with pytest.raises(QueryError):
            parse_predicate("accuracy ~ 0.9")
        with pytest.raises(QueryError):
            parse_predicate("0.9 < accuracy < 1.0; DROP TABLE x")

    def test_build_filter_parameterizes_values(self):
        sql, params = build_filter(
            [parse_predicate("policy=ltp"),
             parse_predicate("accuracy>=0.5")]
        )
        assert "ltp" not in sql and "0.5" not in sql
        assert params == ("ltp", "accuracy", 0.5)


class TestQuery:
    def _seed(self, tmp_path, workloads=("em3d", "tomcatv")):
        cache = ResultCache(tmp_path)
        for spec in figure9.jobs(size=SIZE, workloads=workloads):
            cache.put(spec, execute_spec(spec))
        return cache

    def test_experiment_filter_accepts_alias_and_canonical(
        self, tmp_path
    ):
        cache = self._seed(tmp_path, workloads=("em3d",))
        for name in ("fig9", "figure9"):
            rows = run_query(cache.index, experiment=name)
            assert len(rows) == 3  # base/dsi/ltp for one workload
        with pytest.raises(QueryError):
            run_query(cache.index, experiment="nope")

    def test_metric_and_column_predicates_combine(self, tmp_path):
        cache = self._seed(tmp_path, workloads=("em3d",))
        rows = run_query(
            cache.index,
            where=["policy=ltp", "execution_cycles>0"],
            experiment="figure9",
        )
        assert [r["policy"] for r in rows] == ["ltp"]

    def test_query_answers_from_index_with_corrupt_blob(
        self, tmp_path
    ):
        """The acceptance criterion: corrupt a blob payload and the
        query still returns its row — nothing is unpickled."""
        cache = self._seed(tmp_path, workloads=("em3d",))
        specs = figure9.jobs(size=SIZE, workloads=("em3d",))
        victim = cache.path(specs[0])
        victim.write_bytes(b"\x00garbage, not a pickle\x00")
        rows = run_query(cache.index, experiment="figure9")
        assert len(rows) == 3
        assert cache.key(specs[0]) in {r["digest"] for r in rows}
        # and the blob really is unreadable
        assert cache.get(specs[0]) == (False, None)

    def test_output_formats(self, tmp_path):
        cache = self._seed(tmp_path, workloads=("em3d",))
        rows = run_query(cache.index, experiment="figure9")
        table = format_rows_table(rows)
        assert "em3d" in table and "ltp" in table
        csv_text = format_rows_csv(rows)
        assert csv_text.count("\n") == 4  # header + 3 rows
        records = json.loads(format_rows_json(rows))
        assert len(records) == 3
        assert {r["policy"] for r in records} == {
            "base", "dsi", "ltp"
        }

    def test_limit(self, tmp_path):
        cache = self._seed(tmp_path, workloads=("em3d",))
        assert len(run_query(cache.index, limit=2)) == 2


class TestReindex:
    def test_rebuild_from_blobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = figure9.jobs(size=SIZE, workloads=("em3d",))
        for spec in specs:
            cache.put(spec, execute_spec(spec))
        cache.index.path.unlink()
        cache._index = None
        indexed, skipped = reindex(cache)
        assert (indexed, skipped) == (3, 0)
        rows = run_query(cache.index, experiment="figure9")
        assert {r["digest"] for r in rows} == {
            cache.key(spec) for spec in specs
        }
        assert all(r["workload"] == "em3d" for r in rows)

    def test_unknown_digest_gets_report_attrs(self, tmp_path):
        cache = ResultCache(tmp_path, salt="old-salt")
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        fresh = ResultCache(tmp_path)  # current salt
        fresh.index.path.unlink()
        fresh._index = None
        indexed, skipped = reindex(fresh)
        assert (indexed, skipped) == (1, 0)
        row = fresh.index.select("", ())[0]
        # spec identity is unrecoverable, report attrs fill in
        assert row["workload"] == "em3d"
        assert row["policy"] == "ltp"
        assert row["kind"] is None

    def test_corrupt_blob_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        cache.path(spec).write_bytes(b"not a pickle")
        cache.index.path.unlink()
        cache._index = None
        assert reindex(cache) == (0, 1)

    def test_delete_missing_after_prune(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_ltp_spec(w) for w in ("em3d", "tomcatv")]
        for spec in specs:
            cache.put(spec, execute_spec(spec))
        cache.path(specs[0]).unlink()
        removed = cache.index.delete_missing(
            path.stem for path in cache.entry_paths()
        )
        assert removed == 1
        assert cache.index.digests() == {cache.key(specs[1])}


class TestStoreCli:
    def _seed(self, tmp_path):
        cache = ResultCache(tmp_path)
        for spec in figure9.jobs(size=SIZE, workloads=("em3d",)):
            cache.put(spec, execute_spec(spec))
        return cache

    def test_query_cli_table(self, tmp_path, capsys):
        self._seed(tmp_path)
        rc = main([
            "query", "--cache-dir", str(tmp_path),
            "--experiment", "figure9",
            "--where", "execution_cycles>0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 result(s)" in out and "em3d" in out

    def test_query_cli_no_index(self, tmp_path, capsys):
        rc = main(["query", "--cache-dir", str(tmp_path)])
        assert rc == 1
        assert "cache reindex" in capsys.readouterr().err

    def test_query_cli_bad_predicate(self, tmp_path, capsys):
        self._seed(tmp_path)
        rc = main([
            "query", "--cache-dir", str(tmp_path),
            "--where", "accuracy ~ 1",
        ])
        assert rc == 2
        assert "malformed" in capsys.readouterr().err

    def test_reindex_cli(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        cache.index.path.unlink()
        rc = main(["cache", "reindex", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "reindexed 3 entries" in capsys.readouterr().out
        assert ResultIndex(tmp_path).count() == 3

    def test_stats_hint_missing_index(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        cache.index.path.unlink()
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "index    missing" in out
        assert "cache reindex" in out

    def test_stats_hint_stale_index(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        spec = figure9.jobs(size=SIZE, workloads=("em3d",))[0]
        cache.path(spec).unlink()  # blob gone, row remains
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "(stale)" in out and "cache reindex" in out

    def test_stats_in_sync(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "in sync" in capsys.readouterr().out

    def test_prune_syncs_index(self, tmp_path):
        self._seed(tmp_path)
        rc = main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-age", "0s",
        ])
        assert rc == 0
        assert ResultIndex(tmp_path).count() == 0


class TestSpecDigest:
    def test_matches_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        spec = _ltp_spec()
        assert cache.key(spec) == spec_digest(spec, "s1")
        assert spec_digest(spec, "s1") != spec_digest(spec, "s2")

    def test_wal_mode(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        conn = sqlite3.connect(str(cache.index.path))
        (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        conn.close()
        assert mode == "wal"


class TestNonFiniteMetrics:
    """Publish-path regression: NaN/inf metric values must never
    reach sqlite (NaN stores as NULL, which makes *every* comparison
    predicate on that metric silently exclude the row)."""

    def _nan_report(self):
        from repro.timing.stats import TimingReport

        return TimingReport(
            workload="em3d",
            policy="ltp",
            execution_cycles=float("nan"),
        )

    def _inf_report(self):
        from repro.timing.stats import TimingReport

        return TimingReport(
            workload="em3d",
            policy="ltp",
            execution_cycles=float("inf"),
        )

    def test_finite_metrics_drops_nan_and_inf(self):
        from repro.store import finite_metrics

        metrics = {
            "ok": 1.5,
            "bad_nan": float("nan"),
            "bad_inf": float("inf"),
            "bad_ninf": float("-inf"),
            "zero": 0.0,
        }
        assert finite_metrics(metrics) == {"ok": 1.5, "zero": 0.0}

    def test_nan_metric_not_indexed(self, tmp_path):
        from repro.runner.spec import timing_job

        cache = ResultCache(tmp_path)
        spec = timing_job("em3d", SIZE, PolicySpec(name="ltp"))
        # failing-before: this row's execution_cycles landed as NULL,
        # so both `execution_cycles > 0` *and* `<= 0` excluded it
        cache.put(spec, self._nan_report())
        row = cache.index.select("", ())[0]
        assert "execution_cycles" not in row["metrics"]
        # the identity row still lands and stays queryable
        assert row["policy"] == "ltp"
        rows = run_query(cache.index, where=["policy == ltp"])
        assert len(rows) == 1

    def test_inf_metric_not_indexed(self, tmp_path):
        from repro.runner.spec import timing_job

        cache = ResultCache(tmp_path)
        spec = timing_job("em3d", SIZE, PolicySpec(name="ltp"))
        cache.put(spec, self._inf_report())
        row = cache.index.select("", ())[0]
        assert "execution_cycles" not in row["metrics"]

    def test_finite_metrics_survive_alongside_nan(self, tmp_path):
        from repro.timing.stats import TimingReport
        from repro.runner.spec import timing_job

        cache = ResultCache(tmp_path)
        spec = timing_job("em3d", SIZE, PolicySpec(name="ltp"))
        report = TimingReport(
            workload="em3d",
            policy="ltp",
            execution_cycles=float("nan"),
            accesses=100,
        )
        cache.put(spec, report)
        metrics = cache.index.select("", ())[0]["metrics"]
        assert metrics["accesses"] == 100.0
        assert "execution_cycles" not in metrics


class TestNumericAffinity:
    """Numeric predicates on identity columns must compare by value,
    never by text ordering ("10" < "9" under text affinity)."""

    def _delay_grid(self, tmp_path):
        from repro.runner.spec import timing_job

        cache = ResultCache(tmp_path)
        for delay in (5, 9, 10, 40):
            spec = timing_job(
                "em3d", SIZE, PolicySpec(name="ltp"),
                si_fire_delay=delay,
            )
            cache.put(spec, execute_spec(spec))
        return cache

    def test_one_and_two_digit_delays_compare_numerically(
        self, tmp_path
    ):
        cache = self._delay_grid(tmp_path)
        rows = run_query(cache.index, where=["si_fire_delay < 10"])
        assert sorted(r["si_fire_delay"] for r in rows) == [5, 9]
        rows = run_query(cache.index, where=["si_fire_delay >= 10"])
        assert sorted(r["si_fire_delay"] for r in rows) == [10, 40]

    def test_text_stored_values_still_compare_numerically(
        self, tmp_path
    ):
        # a legacy/foreign index may hold numbers in affinity-less
        # (effectively TEXT) columns, where sqlite compares a text
        # value against a numeric parameter by *type order*, not by
        # value — the CAST in build_filter keeps value ordering even
        # then. Simulate such a schema: pre-create `results` without
        # column affinity (CREATE TABLE IF NOT EXISTS leaves it be).
        db_path = tmp_path / INDEX_DB_NAME
        conn = sqlite3.connect(db_path)
        conn.execute(
            "CREATE TABLE results ("
            "digest PRIMARY KEY, kind, workload, size, policy, "
            "bits, encoder, variant, forwarding, si_fire_delay, "
            "overrides, params, salt, codec, size_bytes, holder, "
            "created, updated)"
        )
        for delay in ("5", "9", "10", "40"):
            conn.execute(
                "INSERT INTO results "
                "(digest, kind, workload, policy, si_fire_delay) "
                "VALUES (?, 'timing', 'em3d', 'ltp', ?)",
                (f"digest-{delay}", delay),
            )
        conn.commit()
        conn.close()
        index = ResultIndex(tmp_path)
        # text storage survived (no affinity coercion): the bug's
        # precondition holds in this database
        with index._connect() as raw:
            stored = [
                row[0]
                for row in raw.execute(
                    "SELECT si_fire_delay FROM results"
                )
            ]
        raw.close()
        assert all(isinstance(v, str) for v in stored)
        # failing-before: every text value compared greater than the
        # numeric parameter, so `< 10` matched nothing at all
        rows = run_query(index, where=["si_fire_delay < 10"])
        got = sorted(int(r["si_fire_delay"]) for r in rows)
        assert got == [5, 9]
        rows = run_query(index, where=["si_fire_delay >= 10"])
        got = sorted(int(r["si_fire_delay"]) for r in rows)
        assert got == [10, 40]

    def test_bits_numeric_predicate(self, tmp_path):
        cache = ResultCache(tmp_path)
        for bits in (9, 13, 30):
            spec = accuracy_job(
                "em3d", SIZE, PolicySpec(name="ltp", bits=bits)
            )
            cache.put(spec, execute_spec(spec))
        rows = run_query(cache.index, where=["bits < 13"])
        assert [r["bits"] for r in rows] == [9]

    def test_python_predicate_matches_numeric_coercion(self):
        from repro.store import parse_predicate, predicate_matches

        row = {"si_fire_delay": "10", "metrics": {"accuracy": 0.25}}
        assert predicate_matches(
            row, parse_predicate("si_fire_delay >= 10")
        )
        assert not predicate_matches(
            row, parse_predicate("si_fire_delay < 9")
        )
        assert predicate_matches(
            row, parse_predicate("accuracy < 0.5")
        )
        # missing names never match, matching SQL semantics
        assert not predicate_matches(
            row, parse_predicate("nonexistent > 0")
        )
