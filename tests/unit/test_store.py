"""Tests for the sqlite result store: index writes on every publish,
the query predicate language, reindexing, and the `repro query` /
`cache reindex` / `cache stats` hint CLI surfaces."""

import json
import sqlite3

import pytest

from repro.experiments import figure9
from repro.experiments.cli import main
from repro.runner import ResultCache, execute_spec
from repro.runner.cache import spec_digest
from repro.runner.spec import PolicySpec, accuracy_job, census_job
from repro.store import (
    INDEX_DB_NAME,
    QueryError,
    ResultIndex,
    parse_predicate,
    reindex,
    run_query,
    scalar_metrics,
)
from repro.store.query import (
    build_filter,
    format_rows_csv,
    format_rows_json,
    format_rows_table,
)

SIZE = "tiny"


def _ltp_spec(workload="em3d"):
    return accuracy_job(workload, SIZE, PolicySpec(name="ltp"))


class TestIndexOnPut:
    def test_put_records_row_and_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        rows = cache.index.select("", ())
        assert len(rows) == 1
        row = rows[0]
        assert row["digest"] == cache.key(spec)
        assert row["workload"] == "em3d"
        assert row["policy"] == "ltp"
        assert row["kind"] == "accuracy"
        assert row["salt"] == cache.salt
        assert row["codec"] == "none"
        assert row["size_bytes"] > 0
        assert 0.0 <= row["metrics"]["accuracy"] <= 1.0

    def test_put_is_idempotent_per_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        value = execute_spec(spec)
        cache.put(spec, value)
        first = cache.index.select("", ())[0]
        cache.put(spec, value, holder="worker-1")
        rows = cache.index.select("", ())
        assert len(rows) == 1
        assert rows[0]["holder"] == "worker-1"
        assert rows[0]["created"] == first["created"]

    def test_holder_recorded(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec), holder="hostx-42")
        assert cache.index.select("", ())[0]["holder"] == "hostx-42"

    def test_index_disabled(self, tmp_path):
        cache = ResultCache(tmp_path, index=False)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        assert cache.index is None
        assert not (tmp_path / INDEX_DB_NAME).exists()

    def test_index_failure_never_fails_publish(self, tmp_path):
        cache = ResultCache(tmp_path)
        # a directory where the db file should be makes every sqlite
        # connect fail; the publish must still land
        (tmp_path / INDEX_DB_NAME).mkdir(parents=True)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        assert cache.get(spec)[0]

    def test_count_without_db_is_none_and_creates_nothing(
        self, tmp_path
    ):
        index = ResultIndex(tmp_path)
        assert index.count() is None
        assert not index.path.exists()

    def test_census_metrics(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = census_job("em3d", SIZE)
        value = execute_spec(spec)
        cache.put(spec, value)
        metrics = cache.index.select("", ())[0]["metrics"]
        assert metrics["total_blocks"] > 0
        assert any(k.startswith("fraction_") for k in metrics)

    def test_scalar_metrics_unknown_type(self):
        assert scalar_metrics(object()) == {}


class TestPredicates:
    def test_parse_numeric(self):
        pred = parse_predicate("accuracy<0.9")
        assert (pred.name, pred.op, pred.value) == (
            "accuracy", "<", 0.9
        )
        assert pred.is_metric

    def test_parse_column_equality(self):
        pred = parse_predicate("policy = ltp")
        assert (pred.name, pred.op, pred.value) == (
            "policy", "==", "ltp"
        )
        assert not pred.is_metric

    def test_parse_quoted_literal(self):
        assert parse_predicate("workload='em3d'").value == "em3d"

    def test_parse_malformed(self):
        with pytest.raises(QueryError):
            parse_predicate("accuracy ~ 0.9")
        with pytest.raises(QueryError):
            parse_predicate("0.9 < accuracy < 1.0; DROP TABLE x")

    def test_build_filter_parameterizes_values(self):
        sql, params = build_filter(
            [parse_predicate("policy=ltp"),
             parse_predicate("accuracy>=0.5")]
        )
        assert "ltp" not in sql and "0.5" not in sql
        assert params == ("ltp", "accuracy", 0.5)


class TestQuery:
    def _seed(self, tmp_path, workloads=("em3d", "tomcatv")):
        cache = ResultCache(tmp_path)
        for spec in figure9.jobs(size=SIZE, workloads=workloads):
            cache.put(spec, execute_spec(spec))
        return cache

    def test_experiment_filter_accepts_alias_and_canonical(
        self, tmp_path
    ):
        cache = self._seed(tmp_path, workloads=("em3d",))
        for name in ("fig9", "figure9"):
            rows = run_query(cache.index, experiment=name)
            assert len(rows) == 3  # base/dsi/ltp for one workload
        with pytest.raises(QueryError):
            run_query(cache.index, experiment="nope")

    def test_metric_and_column_predicates_combine(self, tmp_path):
        cache = self._seed(tmp_path, workloads=("em3d",))
        rows = run_query(
            cache.index,
            where=["policy=ltp", "execution_cycles>0"],
            experiment="figure9",
        )
        assert [r["policy"] for r in rows] == ["ltp"]

    def test_query_answers_from_index_with_corrupt_blob(
        self, tmp_path
    ):
        """The acceptance criterion: corrupt a blob payload and the
        query still returns its row — nothing is unpickled."""
        cache = self._seed(tmp_path, workloads=("em3d",))
        specs = figure9.jobs(size=SIZE, workloads=("em3d",))
        victim = cache.path(specs[0])
        victim.write_bytes(b"\x00garbage, not a pickle\x00")
        rows = run_query(cache.index, experiment="figure9")
        assert len(rows) == 3
        assert cache.key(specs[0]) in {r["digest"] for r in rows}
        # and the blob really is unreadable
        assert cache.get(specs[0]) == (False, None)

    def test_output_formats(self, tmp_path):
        cache = self._seed(tmp_path, workloads=("em3d",))
        rows = run_query(cache.index, experiment="figure9")
        table = format_rows_table(rows)
        assert "em3d" in table and "ltp" in table
        csv_text = format_rows_csv(rows)
        assert csv_text.count("\n") == 4  # header + 3 rows
        records = json.loads(format_rows_json(rows))
        assert len(records) == 3
        assert {r["policy"] for r in records} == {
            "base", "dsi", "ltp"
        }

    def test_limit(self, tmp_path):
        cache = self._seed(tmp_path, workloads=("em3d",))
        assert len(run_query(cache.index, limit=2)) == 2


class TestReindex:
    def test_rebuild_from_blobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = figure9.jobs(size=SIZE, workloads=("em3d",))
        for spec in specs:
            cache.put(spec, execute_spec(spec))
        cache.index.path.unlink()
        cache._index = None
        indexed, skipped = reindex(cache)
        assert (indexed, skipped) == (3, 0)
        rows = run_query(cache.index, experiment="figure9")
        assert {r["digest"] for r in rows} == {
            cache.key(spec) for spec in specs
        }
        assert all(r["workload"] == "em3d" for r in rows)

    def test_unknown_digest_gets_report_attrs(self, tmp_path):
        cache = ResultCache(tmp_path, salt="old-salt")
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        fresh = ResultCache(tmp_path)  # current salt
        fresh.index.path.unlink()
        fresh._index = None
        indexed, skipped = reindex(fresh)
        assert (indexed, skipped) == (1, 0)
        row = fresh.index.select("", ())[0]
        # spec identity is unrecoverable, report attrs fill in
        assert row["workload"] == "em3d"
        assert row["policy"] == "ltp"
        assert row["kind"] is None

    def test_corrupt_blob_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        cache.path(spec).write_bytes(b"not a pickle")
        cache.index.path.unlink()
        cache._index = None
        assert reindex(cache) == (0, 1)

    def test_delete_missing_after_prune(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [_ltp_spec(w) for w in ("em3d", "tomcatv")]
        for spec in specs:
            cache.put(spec, execute_spec(spec))
        cache.path(specs[0]).unlink()
        removed = cache.index.delete_missing(
            path.stem for path in cache.entry_paths()
        )
        assert removed == 1
        assert cache.index.digests() == {cache.key(specs[1])}


class TestStoreCli:
    def _seed(self, tmp_path):
        cache = ResultCache(tmp_path)
        for spec in figure9.jobs(size=SIZE, workloads=("em3d",)):
            cache.put(spec, execute_spec(spec))
        return cache

    def test_query_cli_table(self, tmp_path, capsys):
        self._seed(tmp_path)
        rc = main([
            "query", "--cache-dir", str(tmp_path),
            "--experiment", "figure9",
            "--where", "execution_cycles>0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 result(s)" in out and "em3d" in out

    def test_query_cli_no_index(self, tmp_path, capsys):
        rc = main(["query", "--cache-dir", str(tmp_path)])
        assert rc == 1
        assert "cache reindex" in capsys.readouterr().err

    def test_query_cli_bad_predicate(self, tmp_path, capsys):
        self._seed(tmp_path)
        rc = main([
            "query", "--cache-dir", str(tmp_path),
            "--where", "accuracy ~ 1",
        ])
        assert rc == 2
        assert "malformed" in capsys.readouterr().err

    def test_reindex_cli(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        cache.index.path.unlink()
        rc = main(["cache", "reindex", "--cache-dir", str(tmp_path)])
        assert rc == 0
        assert "reindexed 3 entries" in capsys.readouterr().out
        assert ResultIndex(tmp_path).count() == 3

    def test_stats_hint_missing_index(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        cache.index.path.unlink()
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "index    missing" in out
        assert "cache reindex" in out

    def test_stats_hint_stale_index(self, tmp_path, capsys):
        cache = self._seed(tmp_path)
        spec = figure9.jobs(size=SIZE, workloads=("em3d",))[0]
        cache.path(spec).unlink()  # blob gone, row remains
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "(stale)" in out and "cache reindex" in out

    def test_stats_in_sync(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        ) == 0
        assert "in sync" in capsys.readouterr().out

    def test_prune_syncs_index(self, tmp_path):
        self._seed(tmp_path)
        rc = main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--max-age", "0s",
        ])
        assert rc == 0
        assert ResultIndex(tmp_path).count() == 0


class TestSpecDigest:
    def test_matches_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path, salt="s1")
        spec = _ltp_spec()
        assert cache.key(spec) == spec_digest(spec, "s1")
        assert spec_digest(spec, "s1") != spec_digest(spec, "s2")

    def test_wal_mode(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _ltp_spec()
        cache.put(spec, execute_spec(spec))
        conn = sqlite3.connect(str(cache.index.path))
        (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        conn.close()
        assert mode == "wal"
