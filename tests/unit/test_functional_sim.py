"""Unit tests for the accuracy simulator (repro.sim.functional)."""

import pytest

from repro.core import (
    ConfidenceConfig,
    LastPCPredictor,
    NullPolicy,
    PerBlockLTP,
)
from repro.dsi import DSIPolicy
from repro.sim import AccuracySimulator
from tests.conftest import migratory_rmw, producer_consumer


class TestBasePolicy:
    def test_base_never_predicts(self, pc_workload):
        rep = AccuracySimulator(lambda n: NullPolicy()).run(pc_workload)
        assert rep.predicted == 0
        assert rep.mispredicted == 0
        assert rep.self_invalidations == 0
        assert rep.not_predicted > 0

    def test_denominator_identity(self, pc_workload):
        """predicted + not_predicted must equal the base system's
        invalidations (verified SIs replace externals one for one)."""
        base = AccuracySimulator(lambda n: NullPolicy()).run(pc_workload)
        ltp = AccuracySimulator(lambda n: PerBlockLTP()).run(pc_workload)
        assert ltp.total_invalidations == base.total_invalidations

    def test_accesses_counted(self, pc_workload):
        rep = AccuracySimulator(lambda n: NullPolicy()).run(pc_workload)
        assert rep.accesses == pc_workload.total_steps() - sum(
            1 for p in pc_workload.programs.values()
            for s in p.steps if not hasattr(s, "address")
        )


class TestLTPOnCanonicalPatterns:
    def test_producer_consumer_learned(self):
        ps = producer_consumer(iterations=40)
        rep = AccuracySimulator(lambda n: PerBlockLTP()).run(ps)
        assert rep.predicted_fraction > 0.85
        assert rep.mispredicted_fraction < 0.05

    def test_migratory_learned(self):
        ps = migratory_rmw(iterations=40)
        rep = AccuracySimulator(lambda n: PerBlockLTP()).run(ps)
        assert rep.predicted_fraction > 0.8

    def test_multi_writes_defeat_last_pc_not_ltp(self):
        ps = producer_consumer(iterations=40, writes_per_iter=1)
        # one write per iteration, unique PC: Last-PC fine
        rep = AccuracySimulator(lambda n: LastPCPredictor()).run(ps)
        assert rep.predicted_fraction > 0.85

    def test_training_period_is_not_predicted(self):
        ps = producer_consumer(iterations=6)
        rep = AccuracySimulator(
            lambda n: PerBlockLTP(
                confidence=ConfidenceConfig(initial=2, predict_threshold=3)
            )
        ).run(ps)
        # two iterations of training per (node, block) trace
        assert 0 < rep.predicted < rep.total_invalidations


class TestOracle:
    def test_oracle_predicts_everything(self, pc_workload):
        rep = AccuracySimulator(lambda n: NullPolicy()).run_oracle(
            pc_workload
        )
        assert rep.predicted_fraction == pytest.approx(1.0)
        assert rep.mispredicted == 0

    def test_oracle_on_migratory(self):
        ps = migratory_rmw(iterations=15)
        rep = AccuracySimulator(lambda n: NullPolicy()).run_oracle(ps)
        assert rep.predicted_fraction == pytest.approx(1.0)

    def test_oracle_dominates_ltp(self, pc_workload):
        sim = AccuracySimulator(lambda n: PerBlockLTP())
        ltp = sim.run(pc_workload)
        oracle = sim.run_oracle(pc_workload)
        assert oracle.predicted_fraction >= ltp.predicted_fraction


class TestDSIIntegration:
    def test_dsi_predicts_producer_consumer(self):
        """Write-fetch producers and read-fetch consumers are both
        versioning candidates; barrier-triggered SI verifies correct."""
        ps = producer_consumer(iterations=30, num_consumers=2)
        rep = AccuracySimulator(lambda n: DSIPolicy()).run(ps)
        assert rep.predicted_fraction > 0.6

    def test_dsi_misses_migratory(self):
        """Read-modify-write token passing: every fetch upgrades, the
        migratory exclusion keeps DSI out entirely."""
        ps = migratory_rmw(iterations=30)
        rep = AccuracySimulator(lambda n: DSIPolicy()).run(ps)
        assert rep.predicted_fraction < 0.1


class TestReportRendering:
    def test_summary_contains_key_fields(self, pc_workload):
        rep = AccuracySimulator(lambda n: PerBlockLTP()).run(pc_workload)
        text = rep.summary()
        assert "producer-consumer" in text
        assert "ltp" in text
