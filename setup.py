"""Setup shim.

The environment this reproduction targets is offline: pip cannot fetch
the ``wheel`` package that PEP-517 editable installs require, so
``pip install -e . --no-build-isolation`` falls back to this legacy
``setup.py`` path (``setup.py develop``), which needs only setuptools.
All package metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
