#!/usr/bin/env python
"""Trace capture, inspection, and replay.

1. builds a workload and serializes its interleaved stream to disk
   (the trace-driven-simulation workflow WWT-II provided natively);
2. inspects the per-block instruction traces — the paper's Figure 3
   objects — flagging blocks where a single PC cannot identify the
   last touch;
3. replays the saved trace through the accuracy simulator and checks
   it reproduces the live run bit for bit.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.analysis.traces import extract_traces, trace_digest
from repro.core import PerBlockLTP
from repro.sim import AccuracySimulator
from repro.trace.io import load_stream, save_stream
from repro.trace.scheduler import interleave
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("tomcatv", size="tiny")
    programs = workload.build()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tomcatv.trace"
        count = save_stream(
            interleave(programs), path, programs.num_nodes
        )
        size_kb = path.stat().st_size / 1024
        print(f"captured {count:,} events to {path.name} "
              f"({size_kb:.0f} KiB)\n")

        print("per-block trace digest (most trace-diverse blocks):")
        summaries = extract_traces(interleave(programs),
                                   programs.num_nodes)
        print(trace_digest(summaries, top=3))
        ambiguous = sum(
            1 for s in summaries.values() if s.last_pc_ambiguous
        )
        print(f"\n{ambiguous} (node, block) histories have a final PC "
              "that also appears earlier in the trace -> Last-PC must "
              "mispredict them; trace signatures distinguish the "
              "occurrences.\n")

        live = AccuracySimulator(lambda n: PerBlockLTP()).run(programs)
        num_nodes, events = load_stream(path)
        replay = AccuracySimulator(lambda n: PerBlockLTP()).run_stream(
            events, num_nodes, name="tomcatv-replay"
        )
        print("live run:  ", live.summary())
        print("replay run:", replay.summary())
        identical = (
            live.predicted == replay.predicted
            and live.not_predicted == replay.not_predicted
            and live.mispredicted == replay.mispredicted
        )
        print(f"replay reproduces the live classification: {identical}")


if __name__ == "__main__":
    main()
