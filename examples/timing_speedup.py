#!/usr/bin/env python
"""Figure 9 in miniature: how timely self-invalidation buys speedup.

Runs em3d (the paper's best case) on the discrete-event DSM timing
model under the base protocol, DSI, and LTP, and prints execution
cycles, directory queueing, and self-invalidation timeliness — the
Table 4 quantities that explain the Figure 9 speedups.

Run:  python examples/timing_speedup.py
"""

from repro.core import NullPolicy, PerBlockLTP
from repro.dsi import DSIPolicy
from repro.timing import TimingSimulator
from repro.workloads import get_workload


def main() -> None:
    programs = get_workload("em3d", size="small").build()
    print(f"workload: {programs.name}, {programs.num_nodes} nodes\n")

    runs = {}
    for label, factory in [
        ("base", lambda node: NullPolicy()),
        ("dsi", lambda node: DSIPolicy()),
        ("ltp", lambda node: PerBlockLTP()),
    ]:
        runs[label] = TimingSimulator(factory).run(programs)

    base = runs["base"]
    print(f"{'policy':<6} {'cycles':>14} {'speedup':>8} "
          f"{'dir queueing':>13} {'timely SI':>10}")
    for label, rep in runs.items():
        print(
            f"{label:<6} {rep.execution_cycles:>14,.0f} "
            f"{rep.speedup_over(base):>8.3f} "
            f"{rep.directory.mean_queueing:>13.1f} "
            f"{rep.selfinval.timeliness:>10.1%}"
        )

    print(
        "\nDSI is just as *accurate* as LTP on em3d (Figure 6), but its "
        "barrier-triggered bursts pile up in the directory queues — the "
        "paper's three-orders-of-magnitude queueing blowup — while "
        "LTP's per-block firing spreads the writebacks across the "
        "computation and reaches the directory before the consumers do."
    )


if __name__ == "__main__":
    main()
