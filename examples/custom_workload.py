#!/usr/bin/env python
"""Authoring a new workload against the public API.

Defines a small pipeline workload (stage i hands a batch of blocks to
stage i+1 each iteration, with a token lock), registers nothing —
workloads are just objects — and runs the full accuracy + timing
pipeline on it.

Use this as the template for studying your own sharing patterns.

Run:  python examples/custom_workload.py
"""

import random
from dataclasses import dataclass
from typing import Dict

from repro.core import NullPolicy, PerBlockLTP
from repro.sim import AccuracySimulator
from repro.timing import TimingSimulator
from repro.trace.program import Access, Barrier, Program
from repro.workloads.address_space import AddressSpace, CodeMap
from repro.workloads.base import Workload, WorkloadParams


@dataclass(frozen=True)
class PipelineParams(WorkloadParams):
    """Stage-to-stage hand-off; each stage owns `batch` blocks."""

    batch: int = 6


class Pipeline(Workload):
    """Each node transforms its predecessor's batch into its own."""

    name = "pipeline"
    presets = {
        "tiny": PipelineParams(num_nodes=4, iterations=10),
        "small": PipelineParams(num_nodes=8, iterations=30),
        "paper": PipelineParams(num_nodes=32, iterations=40, batch=12),
    }

    def _generate(
        self,
        programs: Dict[int, Program],
        space: AddressSpace,
        code: CodeMap,
        rng: random.Random,
    ) -> None:
        p: PipelineParams = self.params  # type: ignore[assignment]
        n = p.num_nodes
        batches = space.region("batches", n * p.batch)
        ld = code.pc("stage.load_upstream")
        st = code.pc("stage.store_own")

        def addr(cpu: int, i: int) -> int:
            return batches.block_addr(cpu * p.batch + i)

        bid = 0
        for _ in range(p.iterations):
            for cpu in range(n):
                upstream = (cpu - 1) % n
                prog = programs[cpu]
                for i in range(p.batch):
                    prog.append(Access(ld, addr(upstream, i), False,
                                       work=p.work))
                for i in range(p.batch):
                    prog.append(Access(st, addr(cpu, i), True,
                                       work=p.work))
            bid += 1
            for cpu in range(n):
                programs[cpu].append(Barrier(bid))


def main() -> None:
    programs = Pipeline.sized("small").build()
    print(f"custom workload: {programs.name}, "
          f"{programs.total_steps():,} steps\n")

    accuracy = AccuracySimulator(lambda node: PerBlockLTP()).run(programs)
    print("accuracy:", accuracy.summary())

    base = TimingSimulator(lambda node: NullPolicy()).run(programs)
    ltp = TimingSimulator(lambda node: PerBlockLTP()).run(programs)
    print(f"timing:   base {base.execution_cycles:,.0f} cycles, "
          f"LTP {ltp.execution_cycles:,.0f} cycles "
          f"-> speedup {ltp.speedup_over(base):.3f}")
    print(f"          {ltp.selfinval.timeliness:.1%} of correct "
          f"self-invalidations arrived before the consumer")


if __name__ == "__main__":
    main()
