#!/usr/bin/env python
"""Exploring trace signatures: widths, aliasing, and organizations.

Three short demonstrations:

1. truncated addition keeps repetition counts — the {PCi,PCj} vs
   {PCi,PCj,PCj} traces of Figure 3 stay distinct;
2. subtrace aliasing — Section 3.1's red/black example, where one trace
   is a complete prefix of another and the *shorter* one fires
   prematurely inside the longer;
3. the width sweep of Figure 7 on one workload: how few bits truncated
   addition can get away with.

Run:  python examples/signature_playground.py
"""

from repro.core import (
    GlobalLTP,
    PerBlockLTP,
    TruncatedAddEncoder,
)
from repro.sim import AccuracySimulator
from repro.workloads import get_workload


def demo_repetition_counts() -> None:
    enc = TruncatedAddEncoder(13)
    pci, pcj = 0x11F4, 0x2A08
    once = enc.encode_trace([pci, pcj])
    twice = enc.encode_trace([pci, pcj, pcj])
    print("1. repetition counts survive encoding:")
    print(f"   sig({{PCi,PCj}})     = {once:#06x}")
    print(f"   sig({{PCi,PCj,PCj}}) = {twice:#06x}  (distinct)\n")


def demo_subtrace_aliasing() -> None:
    enc = TruncatedAddEncoder(13)
    pci, pcj, pck = 0x11F4, 0x2A08, 0x0B3C
    short = [pci, pcj]
    long = [pci, pcj, pck]
    running = enc.init(long[0])
    running = enc.update(running, long[1])
    print("2. subtrace aliasing (Section 3.1 red/black example):")
    print(f"   after two touches of the long trace the running "
          f"signature is {running:#06x},")
    print(f"   identical to the complete short trace "
          f"({enc.encode_trace(short):#06x}) -> premature fire.\n")


def demo_width_sweep() -> None:
    programs = get_workload("ocean", "small").build()
    print("3. Figure 7 on ocean — LTP accuracy vs signature width:")
    for bits in (30, 13, 11, 6):
        rep = AccuracySimulator(
            lambda node, b=bits: PerBlockLTP(TruncatedAddEncoder(b))
        ).run(programs)
        print(f"   {bits:>2}-bit: predicted {rep.predicted_fraction:6.1%} "
              f"mispredicted {rep.mispredicted_fraction:5.1%}")
    g = AccuracySimulator(
        lambda node: GlobalLTP(TruncatedAddEncoder(30))
    ).run(programs)
    print(f"   global table (30-bit): predicted "
          f"{g.predicted_fraction:6.1%} — cross-block aliasing at work")


def main() -> None:
    demo_repetition_counts()
    demo_subtrace_aliasing()
    demo_width_sweep()


if __name__ == "__main__":
    main()
