#!/usr/bin/env python
"""The Figure 3(c) failure mode, built by hand.

Packs two array elements into one cache block and streams a stencil
over it: the same load instruction touches each block twice per sharing
phase. A Last-PC predictor can never tell the first touch from the
last; a trace-signature LTP distinguishes them by the running truncated
sum.

This example drives the *predictor objects directly* — no workload
generators — so the learning dynamics are visible event by event.

Run:  python examples/stencil_vs_lastpc.py
"""

from repro.core import ConfidenceConfig, LastPCPredictor, PerBlockLTP
from repro.protocol.states import MissKind

LOAD_PC = 0x4A10  # the stencil's single load instruction
BLOCK = 7

# Train-once confidence so the demonstration is compact.
FAST = ConfidenceConfig(initial=3, predict_threshold=3)


def run_phase(policy, label: str) -> None:
    """One sharing phase: coherence miss, two touches, invalidation.

    A self-invalidation fired at the *final* touch is what the
    directory would verify correct; one fired earlier means the node
    itself re-touches the block — premature.
    """
    touches = [LOAD_PC, LOAD_PC]
    events = []
    for i, pc in enumerate(touches):
        decision = policy.on_access(
            BLOCK, pc,
            trace_start=(i == 0),
            miss_kind=MissKind.READ_FETCH if i == 0 else None,
            version=0 if i == 0 else None,
        )
        events.append(
            f"touch {i + 1}: "
            + ("SELF-INVALIDATE" if decision.self_invalidate else "keep")
        )
        if decision.self_invalidate:
            if i == len(touches) - 1:
                policy.on_verified_correct(BLOCK)
                events.append("-> verified CORRECT (timely!)")
            else:
                policy.on_premature(BLOCK)
                events.append("-> verified PREMATURE (re-fetched)")
            print(f"  {label}: " + "; ".join(events))
            return
    policy.on_invalidation(BLOCK)
    events.append("external invalidation (trace learned)")
    print(f"  {label}: " + "; ".join(events))


def main() -> None:
    last_pc = LastPCPredictor(confidence=FAST)
    ltp = PerBlockLTP(confidence=FAST)

    for phase in range(1, 5):
        print(f"phase {phase}:")
        run_phase(last_pc, "Last-PC")
        run_phase(ltp, "LTP    ")

    print(
        "\nLast-PC fires at the FIRST touch (its signature is just the "
        "PC, which matches immediately), is caught by the verification "
        "mask, and retires. The LTP signature after one touch differs "
        "from the learned two-touch signature, so it fires exactly at "
        "the last touch, phase after phase."
    )


if __name__ == "__main__":
    main()
