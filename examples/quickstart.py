#!/usr/bin/env python
"""Quickstart: train a Last-Touch Predictor on a paper benchmark.

Builds the tomcatv workload (the stencil whose packed blocks defeat
single-PC prediction), runs it through the functional coherence
simulator under three self-invalidation policies, and prints the
Figure-6 style classification for each.

Run:  python examples/quickstart.py
"""

from repro.core import LastPCPredictor, PerBlockLTP
from repro.dsi import DSIPolicy
from repro.sim import AccuracySimulator
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("tomcatv", size="small")
    programs = workload.build()
    print(
        f"workload: {programs.name}, {programs.num_nodes} nodes, "
        f"{programs.total_steps():,} program steps\n"
    )

    policies = {
        "DSI (versioning + sync bursts)": lambda node: DSIPolicy(),
        "Last-PC (single instruction)": lambda node: LastPCPredictor(),
        "LTP (trace signatures)": lambda node: PerBlockLTP(),
    }
    for label, factory in policies.items():
        report = AccuracySimulator(factory).run(programs)
        print(f"{label:<32}"
              f" predicted {report.predicted_fraction:6.1%}"
              f"  not predicted {report.not_predicted_fraction:6.1%}"
              f"  mispredicted {report.mispredicted_fraction:6.1%}")

    print(
        "\nThe trace-based LTP learns that the stencil loads touch each "
        "packed block exactly twice; the single-PC predictor fires at "
        "the first touch, is verified premature, and retires."
    )


if __name__ == "__main__":
    main()
