"""CI guard: the serve/submit path must match the inline backend.

End-to-end, through the real CLI entry points:

1. resolve a small grid with the inline backend (the golden bytes);
2. start ``ltp-repro serve`` as a subprocess (autoscaling from zero,
   free port, fresh cache, wire auth enabled) and parse the announced
   address;
3. assert a wrong-token ``ltp-repro submit`` is rejected before any
   dispatch (the broker admits nothing and counts an auth failure);
4. run two *concurrent* authenticated ``ltp-repro submit`` clients —
   one grid per tenant — then a third warm submission that must be
   served entirely from the service's cache, exercising the
   cross-grid amortization serve mode exists for;
5. poll the service's observability endpoint (``--metrics-port 0``)
   throughout: ``/healthz`` must expose a frame taken *mid-drain*
   (a worker draining, or the drain counted while work is still
   queued), and a live ``/metrics`` scrape must show tenant/lease
   counters consistent with the exit summary the service prints;
6. assert every report the service published is byte-identical to the
   golden bytes, that the autoscaler scaled up from zero, and that it
   scaled *down* mid-queue by draining a worker (protocol v3: the
   ``fleet_events.jsonl`` log records a ``down`` with a non-empty
   queue, and the serve summary counts at least one drain);
7. run ``report --html`` against the smoke cache and assert the
   rendered site covers the fleet's scale-up and the submitted
   experiments (CI uploads the site directory as an artifact).

Run as ``PYTHONPATH=src python scripts/serve_smoke_check.py [DIR]``;
exits non-zero on any divergence.
"""

import json
import pickle
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.experiments.cli import main as cli_main
from repro.runner import PolicySpec, ResultCache, Runner, timing_job
from repro.telemetry.top import metric_total, parse_prometheus

SIZE = "tiny"
#: one grid per tenant — distinct workloads so the two concurrent
#: submissions admit disjoint spec sets into the shared lease table
WORKLOADS = ("em3d", "tomcatv")
AUTH_TOKEN = "serve-smoke-token"


def _grid(workload):
    # table4's slice for one workload: small, deterministic,
    # multi-policy
    return [
        timing_job(workload, SIZE, PolicySpec(name=name))
        for name in ("base", "dsi", "ltp")
    ]


def _start_serve(cache_dir: Path):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--listen", "127.0.0.1:0",
            "--cache-dir", str(cache_dir),
            "--max-workers", "2",
            # 3 specs/worker means the controller wants a single
            # worker as soon as the 6-spec tenant wave is half done —
            # a wide window for the mid-queue scale-down this script
            # asserts on (retirement drains, so nothing strands)
            "--specs-per-worker", "3",
            "--cooldown", "0.2",
            "--scale-interval", "0.05",
            "--lease-ttl", "10",
            "--grids", "3",
            "--auth-token", AUTH_TOKEN,
            "--metrics-port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines = []

    def pump():
        for line in proc.stdout:
            lines.append(line.rstrip())

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    deadline = time.time() + 60
    while time.time() < deadline:
        for line in lines:
            match = re.search(r"listening on (\S+)", line)
            if match:
                return proc, match.group(1), lines
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.kill()
    raise AssertionError(
        "serve never announced an address:\n" + "\n".join(lines)
    )


def _wait_for_metrics(proc, lines, timeout=60):
    """The metrics line prints right after the listen line."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        for line in lines:
            match = re.search(r"metrics on (http://\S+)/metrics", line)
            if match:
                return match.group(1)
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    raise AssertionError(
        "serve never announced a metrics endpoint:\n" + "\n".join(lines)
    )


def _fetch(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.read().decode("utf-8")


def _submit(address, workload, token):
    return cli_main([
        "submit", "table4",
        "--size", SIZE, "--workloads", workload,
        "--connect", address,
        "--timeout", "240",
        "--auth-token", token,
    ])


def main(argv) -> int:
    if argv:
        work_dir = Path(argv[0])
        work_dir.mkdir(parents=True, exist_ok=True)
        context = None
    else:
        context = tempfile.TemporaryDirectory()
        work_dir = Path(context.name)
    cache_dir = work_dir / "serve-cache"
    try:
        golden = {
            spec: pickle.dumps(
                value, protocol=pickle.HIGHEST_PROTOCOL
            )
            for workload in WORKLOADS
            for spec, value in Runner().run(_grid(workload)).items()
        }

        proc, address, lines = _start_serve(cache_dir)
        health_frames = []
        stop_polling = threading.Event()
        try:
            metrics_base = _wait_for_metrics(proc, lines)

            # wrong token: rejected during the HMAC handshake, before
            # the submit frame is ever dispatched — and it must not
            # consume one of the service's --grids slots
            rc = _submit(address, WORKLOADS[0], "not-the-token")
            assert rc != 0, (
                "wrong-token submit was accepted by an authenticated "
                "broker"
            )

            # two tenants submit concurrently; the fair-share broker
            # serves both grids from the same autoscaled fleet —
            # while a background poller watches /healthz the way an
            # external monitor would, from first submit all the way
            # through the service's own shutdown drain
            def poll_health():
                while not stop_polling.is_set():
                    try:
                        health_frames.append(
                            json.loads(_fetch(metrics_base, "/healthz"))
                        )
                    except Exception:
                        # endpoint not up yet / torn down at exit
                        pass
                    stop_polling.wait(0.005)

            poller = threading.Thread(target=poll_health, daemon=True)
            poller.start()
            codes = {}
            tenants = [
                threading.Thread(
                    target=lambda w=w: codes.__setitem__(
                        w, _submit(address, w, AUTH_TOKEN)
                    ),
                )
                for w in WORKLOADS
            ]
            for t in tenants:
                t.start()
            for t in tenants:
                t.join()
            for workload, rc in codes.items():
                assert rc == 0, f"{workload} submit exited {rc}"

            # a live scrape, while the service still runs: the two
            # tenant grids' traffic must already be on the wire
            specs_total = sum(len(_grid(w)) for w in WORKLOADS)
            health = json.loads(_fetch(metrics_base, "/healthz"))
            assert health["fleet"]["policy"], (
                "fleet section missing from /healthz"
            )
            scraped_drains = health["stats"]["drains"]
            scraped_auth = health["stats"]["auth_failures"]
            assert scraped_drains >= 1, "drain missing from /healthz"
            assert scraped_auth >= 1, (
                "auth failure missing from /healthz"
            )
            samples = parse_prometheus(_fetch(metrics_base, "/metrics"))
            assert metric_total(
                samples, "repro_broker_results_total", outcome="first"
            ) >= specs_total
            assert metric_total(
                samples, "repro_broker_leases_total"
            ) >= specs_total
            assert metric_total(
                samples, "repro_broker_auth_failures_total"
            ) == scraped_auth
            assert metric_total(
                samples,
                "repro_broker_lease_to_publish_seconds_count",
            ) >= specs_total

            # warm: served entirely from the service's cache
            rc = _submit(address, WORKLOADS[0], AUTH_TOKEN)
            assert rc == 0, f"warm submit exited {rc}"
            proc.wait(timeout=60)  # --grids 3 ends the service
            assert proc.returncode == 0, (
                f"serve exited {proc.returncode}:\n"
                + "\n".join(lines)
            )
            stop_polling.set()
            poller.join(timeout=5)

            # the drain phases were observable over HTTP while in
            # flight: a worker mid drain-handshake, the drain counted
            # with work still outstanding, or the service's own
            # shutdown drain (``closing`` stays scrapeable until the
            # fleet has wound down)
            mid_drain = [
                doc for doc in health_frames
                if any(
                    w.get("draining")
                    for w in doc.get("workers", {}).values()
                )
                or doc.get("closing")
                or (
                    doc.get("stats", {}).get("drains", 0) > 0
                    and doc.get("queue_depth", 0) + doc.get("leased", 0)
                    > 0
                )
            ]
            assert mid_drain, (
                f"no mid-drain /healthz frame in "
                f"{len(health_frames)} polled frame(s)"
            )
        finally:
            stop_polling.set()
            if proc.poll() is None:
                proc.kill()

        # byte-identity: what the service published vs inline golden
        cache = ResultCache(cache_dir)
        for spec, raw in golden.items():
            hit, value = cache.get(spec)
            assert hit, (
                f"{spec.label()} missing from the serve cache"
            )
            got = pickle.dumps(
                value, protocol=pickle.HIGHEST_PROTOCOL
            )
            assert got == raw, (
                f"{spec.label()} diverged from the inline backend"
            )

        # the broker counted the rejected client, and retirement went
        # through the drain handshake (summary prints only when the
        # counters are non-zero)
        summary = [line for line in lines if "auth failure" in line]
        assert summary, (
            "serve summary recorded no auth failures:\n"
            + "\n".join(lines)
        )
        summary_drains = int(
            re.search(r"(\d+) drain", summary[0]).group(1)
        )
        summary_auth = int(
            re.search(r"(\d+) auth failure", summary[0]).group(1)
        )
        assert summary_drains >= 1, (
            f"no worker was drained: {summary[0]}"
        )
        # the live scrape and the exit summary told the same story:
        # no auth failure happened after the scrape (the warm grid
        # authenticates), and drains only accumulate
        assert summary_auth == scraped_auth, (
            f"scraped {scraped_auth} auth failure(s), summary says "
            f"{summary_auth}"
        )
        assert summary_drains >= scraped_drains, (
            f"scraped {scraped_drains} drain(s), summary says "
            f"{summary_drains}"
        )

        # the autoscaler did its job, in both directions: a scale-up
        # from zero, and a mid-queue scale-down (allowed since
        # protocol v3 — retirement drains instead of terminating)
        from repro.telemetry import read_jsonl

        events = list(
            read_jsonl(cache_dir / "claims" / "fleet_events.jsonl")
        )
        ups = [e for e in events if e["action"] == "up"]
        assert ups, f"no scale-up event recorded: {events}"
        assert ups[0]["live"] == 0, (
            f"first scale-up did not start from zero: {ups[0]}"
        )
        downs = [e for e in events if e["action"] == "down"]
        assert downs, f"no scale-down event recorded: {events}"
        mid_queue_downs = [
            e for e in downs if e["queue_depth"] > 0
        ]
        assert mid_queue_downs, (
            f"every scale-down waited for an empty queue: {downs}"
        )

        # the reporting pipeline runs against the same cache: the
        # smoke fleet's published results + scaling events must
        # render as a self-contained static site (uploaded as a CI
        # artifact by the serve-smoke job)
        site_dir = work_dir / "site"
        rc = cli_main([
            "report", "--html", str(site_dir),
            "--cache-dir", str(cache_dir),
        ])
        assert rc == 0, f"report --html exited {rc}"
        index_html = (site_dir / "index.html").read_text()
        assert "Fleet" in index_html, "fleet section missing"
        assert ">up<" in index_html or ">up" in index_html, (
            "scale-up event missing from the rendered timeline"
        )
        experiment_pages = list(site_dir.glob("experiment-*.html"))
        assert experiment_pages, (
            "no experiment page rendered from the smoke grid"
        )
    finally:
        if context is not None:
            context.cleanup()
    print(
        "serve smoke OK: 2 concurrent tenants + 1 warm grid "
        "byte-identical to the inline backend, wrong-token client "
        f"rejected, fleet scaled up from zero ({len(ups)} up "
        f"event(s)) and drained down mid-queue "
        f"({len(mid_queue_downs)} of {len(downs)} down event(s)), "
        f"drain observed live over /healthz ({len(mid_drain)} "
        f"frame(s)), /metrics scrape consistent with the exit "
        f"summary, report site rendered "
        f"({1 + len(experiment_pages)} page(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
