"""CI guard: the serve/submit path must match the inline backend.

End-to-end, through the real CLI entry points:

1. resolve a small grid with the inline backend (the golden bytes);
2. start ``ltp-repro serve`` as a subprocess (autoscaling from zero,
   free port, fresh cache) and parse the announced address;
3. run ``ltp-repro submit`` against it (twice — the second submission
   must be served entirely from the service's cache, exercising the
   cross-grid amortization serve mode exists for);
4. assert every report the service published is byte-identical to the
   golden bytes, and that the autoscaler actually scaled (the
   ``fleet.json`` status mirror records a scale-up event);
5. run ``report --html`` against the smoke cache and assert the
   rendered site covers the fleet's scale-up and the submitted
   experiment (CI uploads the site directory as an artifact).

Run as ``PYTHONPATH=src python scripts/serve_smoke_check.py [DIR]``;
exits non-zero on any divergence.
"""

import json
import pickle
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.experiments.cli import main as cli_main
from repro.runner import PolicySpec, ResultCache, Runner, timing_job

SIZE = "tiny"
WORKLOAD = "em3d"


def _grid():
    # table4's em3d slice: small, deterministic, multi-policy
    return [
        timing_job(WORKLOAD, SIZE, PolicySpec(name=name))
        for name in ("base", "dsi", "ltp")
    ]


def _start_serve(cache_dir: Path):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--listen", "127.0.0.1:0",
            "--cache-dir", str(cache_dir),
            "--max-workers", "2",
            "--specs-per-worker", "2",
            "--cooldown", "0.2",
            "--scale-interval", "0.1",
            "--lease-ttl", "10",
            "--grids", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines = []

    def pump():
        for line in proc.stdout:
            lines.append(line.rstrip())

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    deadline = time.time() + 60
    while time.time() < deadline:
        for line in lines:
            match = re.search(r"listening on (\S+)", line)
            if match:
                return proc, match.group(1), lines
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.kill()
    raise AssertionError(
        "serve never announced an address:\n" + "\n".join(lines)
    )


def main(argv) -> int:
    if argv:
        work_dir = Path(argv[0])
        work_dir.mkdir(parents=True, exist_ok=True)
        context = None
    else:
        context = tempfile.TemporaryDirectory()
        work_dir = Path(context.name)
    cache_dir = work_dir / "serve-cache"
    try:
        grid = _grid()
        golden = {
            spec: pickle.dumps(
                value, protocol=pickle.HIGHEST_PROTOCOL
            )
            for spec, value in Runner().run(grid).items()
        }

        proc, address, lines = _start_serve(cache_dir)
        try:
            for attempt in ("cold", "warm"):
                rc = cli_main([
                    "submit", "table4",
                    "--size", SIZE, "--workloads", WORKLOAD,
                    "--connect", address,
                    "--timeout", "240",
                ])
                assert rc == 0, f"{attempt} submit exited {rc}"
            proc.wait(timeout=60)  # --grids 2 ends the service
            assert proc.returncode == 0, (
                f"serve exited {proc.returncode}:\n"
                + "\n".join(lines)
            )
        finally:
            if proc.poll() is None:
                proc.kill()

        # byte-identity: what the service published vs inline golden
        cache = ResultCache(cache_dir)
        for spec, raw in golden.items():
            hit, value = cache.get(spec)
            assert hit, (
                f"{spec.label()} missing from the serve cache"
            )
            got = pickle.dumps(
                value, protocol=pickle.HIGHEST_PROTOCOL
            )
            assert got == raw, (
                f"{spec.label()} diverged from the inline backend"
            )

        # the autoscaler did its job: a recorded scale-up from zero
        status = json.loads(
            (cache_dir / "claims" / "fleet.json").read_text()
        )
        ups = [
            event for event in status["events"]
            if event["action"] == "up"
        ]
        assert ups, f"no scale-up event recorded: {status['events']}"
        assert ups[0]["live"] == 0, (
            f"first scale-up did not start from zero: {ups[0]}"
        )

        # the reporting pipeline runs against the same cache: the
        # smoke fleet's published results + scaling events must
        # render as a self-contained static site (uploaded as a CI
        # artifact by the serve-smoke job)
        site_dir = work_dir / "site"
        rc = cli_main([
            "report", "--html", str(site_dir),
            "--cache-dir", str(cache_dir),
        ])
        assert rc == 0, f"report --html exited {rc}"
        index_html = (site_dir / "index.html").read_text()
        assert "Fleet" in index_html, "fleet section missing"
        assert ">up<" in index_html or ">up" in index_html, (
            "scale-up event missing from the rendered timeline"
        )
        experiment_pages = list(site_dir.glob("experiment-*.html"))
        assert experiment_pages, (
            "no experiment page rendered from the smoke grid"
        )
    finally:
        if context is not None:
            context.cleanup()
    print(
        "serve smoke OK: 2 submitted grids byte-identical to the "
        "inline backend, fleet scaled up from zero "
        f"({len(ups)} up event(s)), report site rendered "
        f"({1 + len(experiment_pages)} page(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
