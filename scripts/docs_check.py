"""CI guard: the docs must not rot.

Checks, for ``README.md`` and every ``docs/*.md``:

1. every relative markdown link ``[text](target)`` resolves to a file
   in the repo;
2. every ``#anchor`` in those links matches a heading in the target
   file (GitHub slugification: lowercase, punctuation stripped,
   spaces to hyphens, ``-N`` suffixes for duplicates);
3. every backticked repo path (``src/...``, ``tests/...``,
   ``scripts/...``, ``benchmarks/...``, ``docs/...``,
   ``.github/...``) names a file or directory that exists — so a
   renamed module breaks the docs job, not a reader.

Run as ``python scripts/docs_check.py [REPO_ROOT]``; exits non-zero
listing every broken reference.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
CODE_SPAN = re.compile(r"`([^`\n]+)`")
#: backticked tokens that claim to be repo paths
REPO_PATH = re.compile(
    r"^(?:src|tests|scripts|benchmarks|docs|\.github)/[\w./-]+$"
)
FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub's anchor id for a heading text."""
    text = re.sub(r"[^\w\s-]", "", heading.lower())
    return text.replace(" ", "-")


def anchors(markdown: str) -> set:
    seen: dict = {}
    ids = set()
    for match in HEADING.finditer(FENCE.sub("", markdown)):
        slug = slugify(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        ids.add(slug if count == 0 else f"{slug}-{count}")
    return ids


def check_file(path: Path, root: Path) -> list:
    errors = []
    text = path.read_text()
    prose = FENCE.sub("", text)

    for match in LINK.finditer(prose):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = path if not file_part else (
            path.parent / file_part
        ).resolve()
        if not dest.exists():
            errors.append(f"{path.relative_to(root)}: broken link "
                          f"-> {target}")
            continue
        if anchor:
            if dest.suffix != ".md":
                continue
            if anchor not in anchors(dest.read_text()):
                errors.append(
                    f"{path.relative_to(root)}: missing anchor "
                    f"#{anchor} in {dest.relative_to(root)}"
                )

    for match in CODE_SPAN.finditer(prose):
        token = match.group(1)
        if REPO_PATH.match(token) and not (root / token).exists():
            errors.append(f"{path.relative_to(root)}: backticked "
                          f"path does not exist -> {token}")
    return errors


def main(argv) -> int:
    root = Path(argv[0]).resolve() if argv else (
        Path(__file__).resolve().parent.parent
    )
    files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    errors = []
    for path in files:
        if not path.exists():
            errors.append(f"missing documentation file: {path}")
            continue
        errors.extend(check_file(path, root))
    if errors:
        print(f"docs check FAILED ({len(errors)} problem(s)):")
        for line in errors:
            print(f"  {line}")
        return 1
    print(f"docs check OK: {len(files)} file(s), links, anchors, and "
          f"source paths all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
