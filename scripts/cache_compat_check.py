"""CI guard: codec-era readers must serve pre-codec cache fixtures.

Writes a result cache and a trace cache exactly the way the pre-codec
code did — raw pickled bytes, no blob container — then verifies that

1. ``cache stats`` accounts the fixture without error,
2. a warm run through a ``zlib``-configured runner serves every spec
   from the legacy entries (zero executions, zero trace builds),
3. ``cache migrate --codec zlib`` re-encodes in place and a second
   warm run still serves everything byte-identically.

Run as ``PYTHONPATH=src python scripts/cache_compat_check.py [DIR]``;
exits non-zero on any regression of the legacy read path.
"""

import pickle
import sys
import tempfile
from pathlib import Path

from repro._fsutil import atomic_write_bytes
from repro.experiments.cli import main as cli_main
from repro.runner import (
    PolicySpec,
    ResultCache,
    Runner,
    census_job,
    execute_spec,
    timing_job,
)
from repro.runner import runner as runner_module
from repro.workloads import TraceCache, get_workload

WORKLOADS = ("em3d", "tomcatv")
SIZE = "tiny"


def _specs():
    return [census_job(name, SIZE) for name in WORKLOADS] + [
        timing_job("em3d", SIZE, PolicySpec(name="ltp")),
    ]


def write_legacy_fixture(cache_dir: Path):
    """Populate ``cache_dir`` in the pre-codec format: raw pickles
    written directly, bypassing the codec layer entirely."""
    cache = ResultCache(cache_dir)
    expected = {}
    for spec in _specs():
        value = execute_spec(spec)
        raw = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(cache.path(spec), raw)
        expected[spec] = raw
    traces = TraceCache(cache_dir / "traces")
    for name in WORKLOADS:
        workload = get_workload(name, SIZE)
        raw = pickle.dumps(
            workload.build(), protocol=pickle.HIGHEST_PROTOCOL
        )
        atomic_write_bytes(traces.path(workload), raw)
    return expected


def assert_warm(cache_dir: Path, expected, label: str) -> None:
    runner_module._PROGRAMS.clear()
    runner = Runner(
        cache=ResultCache(cache_dir, codec="zlib"),
        trace_cache=TraceCache(cache_dir / "traces", codec="zlib"),
    )
    results = runner.run(list(expected))
    assert runner.stats.executed == 0, (
        f"{label}: executed {runner.stats.executed} specs instead of "
        "serving them from the fixture cache"
    )
    assert runner.stats.cache_hits == len(expected), (
        f"{label}: {runner.stats.cache_hits} cache hits, wanted "
        f"{len(expected)}"
    )
    for spec, raw in expected.items():
        got = pickle.dumps(
            results[spec], protocol=pickle.HIGHEST_PROTOCOL
        )
        assert got == raw, f"{label}: {spec.label()} not byte-identical"
    # the fixture's legacy trace entries must read as hits too
    traces = TraceCache(cache_dir / "traces", codec="zlib")
    for name in WORKLOADS:
        hit, _ = traces.get(get_workload(name, SIZE))
        assert hit, f"{label}: legacy trace entry for {name} unreadable"


def main(argv) -> int:
    if argv:
        cache_dir = Path(argv[0])
        cache_dir.mkdir(parents=True, exist_ok=True)
        context = None
    else:
        context = tempfile.TemporaryDirectory()
        cache_dir = Path(context.name)
    try:
        expected = write_legacy_fixture(cache_dir)
        rc = cli_main(["cache", "stats", "--cache-dir", str(cache_dir)])
        assert rc == 0, f"cache stats exited {rc}"
        assert_warm(cache_dir, expected, "pre-migration warm run")
        rc = cli_main([
            "cache", "migrate", "--cache-dir", str(cache_dir),
            "--codec", "zlib",
        ])
        assert rc == 0, f"cache migrate exited {rc}"
        assert_warm(cache_dir, expected, "post-migration warm run")
    finally:
        if context is not None:
            context.cleanup()
    print("cache back-compat OK: legacy entries readable before and "
          "after migration")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
