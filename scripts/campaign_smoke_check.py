"""CI guard: a seeded discovery campaign against a real serve broker.

End-to-end, through the real CLI entry points:

1. start ``ltp-repro serve`` as a subprocess (1-worker fleet, free
   port, fresh cache, wire auth) and parse the announced address;
2. run a tiny seeded campaign (2-point space, ``accuracy < 0.5``)
   as a broker tenant via ``ltp-repro campaign run --connect`` and
   assert it completes, the serve process exits cleanly after its
   grid quota, and **at least one discovery lands in the index**
   with the campaign tag (visible to ``query --campaign``);
3. resume the campaign from its state file (inline — replay executes
   nothing, so no broker is needed) and assert it is a **no-op
   re-run**: zero fresh executions, state file byte-identical;
4. render ``report --html`` against the campaign's cache and assert
   the site contains the **Discoveries** section with this
   campaign's name and scatter figure.

Run as ``PYTHONPATH=src python scripts/campaign_smoke_check.py
[DIR]``; exits non-zero on any divergence.
"""

import contextlib
import io
import json
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.experiments.cli import main as cli_main
from repro.store import ResultIndex, run_query

AUTH_TOKEN = "campaign-smoke-token"
CAMPAIGN = "campaign-seed7"
#: the campaign's space: workloads em3d x policies {base, ltp} at
#: kind=accuracy / delay 0 — 2 points, so the broker serves exactly
#: 2 one-spec grids; base scores accuracy 0.0 (a guaranteed
#: discovery for the `accuracy < 0.5` metric)
CAMPAIGN_ARGS = (
    "--budget", "4", "--seed", "7", "--size", "tiny",
    "--workloads", "em3d", "--policies", "base", "ltp",
    "--kinds", "accuracy", "--delays", "0",
)


def _start_serve(cache_dir: Path):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--listen", "127.0.0.1:0",
            "--cache-dir", str(cache_dir),
            "--max-workers", "1",
            "--cooldown", "0.2",
            "--scale-interval", "0.05",
            "--lease-ttl", "10",
            "--grids", "2",
            "--auth-token", AUTH_TOKEN,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines = []

    def pump():
        for line in proc.stdout:
            lines.append(line.rstrip())

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.time() + 60
    while time.time() < deadline:
        for line in lines:
            match = re.search(r"listening on (\S+)", line)
            if match:
                return proc, match.group(1), lines
        if proc.poll() is not None:
            break
        time.sleep(0.1)
    proc.kill()
    raise AssertionError(
        "serve never announced an address:\n" + "\n".join(lines)
    )


def main(argv) -> int:
    if argv:
        work_dir = Path(argv[0])
        work_dir.mkdir(parents=True, exist_ok=True)
        context = None
    else:
        context = tempfile.TemporaryDirectory()
        work_dir = Path(context.name)
    cache_dir = work_dir / "campaign-cache"
    try:
        proc, address, lines = _start_serve(cache_dir)
        try:
            rc = cli_main([
                "campaign", "run",
                "--cache-dir", str(cache_dir),
                *CAMPAIGN_ARGS,
                "--connect", address,
                "--timeout", "240",
                "--auth-token", AUTH_TOKEN,
            ])
            assert rc == 0, f"campaign run exited {rc}"
            proc.wait(timeout=60)  # --grids 2 ends the service
            assert proc.returncode == 0, (
                f"serve exited {proc.returncode}:\n"
                + "\n".join(lines)
            )
        finally:
            if proc.poll() is None:
                proc.kill()

        # >= 1 discovery landed in the index under the campaign tag
        index = ResultIndex(cache_dir)
        assert CAMPAIGN in index.campaigns(), (
            f"campaign tag missing from the index: "
            f"{index.campaigns()}"
        )
        rows = run_query(index, campaign=CAMPAIGN)
        assert rows, "no tagged discovery rows in the index"
        for row in rows:
            assert row["metrics"].get("accuracy", 1.0) < 0.5, (
                f"tagged row does not satisfy the metric: {row}"
            )

        # resume from the state file is a no-op re-run: nothing
        # fresh executes (so no broker needed), state is unchanged
        state = cache_dir / "campaigns" / f"{CAMPAIGN}.json"
        assert state.exists(), f"no state file at {state}"
        before = state.read_bytes()
        explored = len(json.loads(before)["explored"])
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            rc = cli_main([
                "campaign", "resume",
                "--cache-dir", str(cache_dir),
                "--name", CAMPAIGN,
            ])
        assert rc == 0, f"campaign resume exited {rc}"
        assert "0 fresh" in stdout.getvalue(), (
            "resume re-executed points:\n" + stdout.getvalue()
        )
        assert state.read_bytes() == before, (
            "resume changed the state file of a finished campaign"
        )

        # the rendered report carries the Discoveries section
        site_dir = work_dir / "site"
        rc = cli_main([
            "report", "--html", str(site_dir),
            "--cache-dir", str(cache_dir),
        ])
        assert rc == 0, f"report --html exited {rc}"
        index_html = (site_dir / "index.html").read_text()
        assert "Discoveries" in index_html, (
            "Discoveries section missing from the report"
        )
        assert CAMPAIGN in index_html, (
            "campaign name missing from the Discoveries section"
        )
        assert 'id="discoveries"' in index_html
        assert index_html.count("<svg") >= 1, (
            "no scatter figure rendered"
        )
    finally:
        if context is not None:
            context.cleanup()
    print(
        f"campaign smoke OK: {explored} point(s) explored as a "
        f"serve tenant, {len(rows)} tagged discovery(ies) queryable, "
        "resume was a byte-identical no-op, Discoveries section "
        "rendered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
